"""``repro.cli lint --explain NESxxx`` — one rule, explained.

Each rule gets a minimal violating/clean example pair distilled from its
test fixtures (``tests/analysis``), shown together with the rule's
description, pragma spelling and the required-reason convention.  The
examples are *live*: ``tests/analysis/test_explain.py`` lints every pair
and asserts the violating snippet triggers exactly its rule and the
clean snippet does not, so the help text can never drift from the
checkers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.registry import all_checkers

__all__ = ["Example", "EXAMPLES", "explain_rule"]


@dataclass(frozen=True)
class Example:
    """A minimal violating/clean source pair for one rule.

    ``path`` is the recorded file path the snippets are linted under —
    several rules are module-scoped, so the path is part of the repro.
    """

    path: str
    bad: str
    good: str


_SEL = "repro/selection/mod.py"
_QS = "repro/selection/qscore.py"
_NN = "repro/nn/blocks.py"
_ANY = "repro/data/mod.py"

EXAMPLES: dict[str, Example] = {
    "NES001": Example(
        path=_SEL,
        bad=(
            "import numpy as np\n"
            "x = np.random.rand(3)\n"
        ),
        good=(
            "import numpy as np\n"
            "rng = np.random.default_rng(17)\n"
            "x = rng.random(3)\n"
        ),
    ),
    "NES002": Example(
        path=_SEL,
        bad=(
            "import numpy as np\n"
            "x = np.zeros(5)\n"
        ),
        good=(
            "import numpy as np\n"
            "x = np.zeros(5, dtype=np.float32)\n"
        ),
    ),
    "NES003": Example(
        path=_ANY,
        bad=(
            "try:\n"
            "    work()\n"
            "except Exception:\n"
            "    result = None\n"
        ),
        good=(
            "try:\n"
            "    work()\n"
            "except ValueError:\n"
            "    pass\n"
        ),
    ),
    "NES004": Example(
        path=_ANY,
        bad=(
            "def leak(vectors):\n"
            "    store = SharedFeatureStore(vectors)\n"
            "    return store.vectors.sum()\n"
        ),
        good=(
            "def ok(vectors):\n"
            "    with SharedFeatureStore(vectors) as store:\n"
            "        return store.vectors.sum()\n"
        ),
    ),
    "NES005": Example(
        path=_NN,
        bad=(
            "class Conv(Module):\n"
            "    def forward(self, x):\n"
            "        return x * self.weight\n"
        ),
        good=(
            "from repro.nn.contracts import shape_contract\n"
            "\n"
            "class Conv(Module):\n"
            "    @shape_contract(\"N,C,H,W -> N,K,H',W'\")\n"
            "    def forward(self, x):\n"
            "        return x * self.weight\n"
        ),
    ),
    "NES006": Example(
        path=_ANY,
        bad=(
            "from repro import obs\n"
            "\n"
            "def f():\n"
            "    sp = obs.span(\"epoch\")\n"
            "    sp.set(x=1)\n"
        ),
        good=(
            "from repro import obs\n"
            "\n"
            "def f():\n"
            "    with obs.span(\"epoch\") as sp:\n"
            "        sp.set(x=1)\n"
        ),
    ),
    "NES007": Example(
        path=_NN,
        bad=(
            "def f(pool):\n"
            "    lease = pool.lease((4, 4))\n"
            "    return lease.array.sum()\n"
        ),
        good=(
            "def f(pool):\n"
            "    with pool.lease((4, 4)) as lease:\n"
            "        return lease.array.sum()\n"
        ),
    ),
    "NES008": Example(
        path=_QS,
        bad=(
            "import numpy as np\n"
            "\n"
            "def f(q):\n"
            "    return q.astype(np.float64)\n"
        ),
        good=(
            "import numpy as np\n"
            "\n"
            "def f(q):\n"
            "    return q.astype(np.float32)\n"
        ),
    ),
    "NES009": Example(
        path=_ANY,
        bad=(
            "import threading\n"
            "\n"
            "class Round:\n"
            "    def _run(self):\n"
            "        self.count = 1\n"
            "\n"
            "    def reset(self):\n"
            "        self.count = 0\n"
            "\n"
            "    def launch(self):\n"
            "        threading.Thread(target=self._run).start()\n"
        ),
        good=(
            "import threading\n"
            "\n"
            "class Round:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "\n"
            "    def _run(self):\n"
            "        with self._lock:\n"
            "            self.count = 1\n"
            "\n"
            "    def reset(self):\n"
            "        with self._lock:\n"
            "            self.count = 0\n"
            "\n"
            "    def launch(self):\n"
            "        threading.Thread(target=self._run).start()\n"
        ),
    ),
    "NES010": Example(
        path=_ANY,
        bad=(
            "import numpy as np\n"
            "\n"
            "def make_proxies():\n"
            "    return np.zeros(4).astype(np.float64)\n"
            "\n"
            "def craig_select_class(vectors):\n"
            "    return vectors\n"
            "\n"
            "def select_round():\n"
            "    return craig_select_class(make_proxies())\n"
        ),
        good=(
            "import numpy as np\n"
            "\n"
            "def make_proxies():\n"
            "    return np.zeros(4).astype(np.float32)\n"
            "\n"
            "def craig_select_class(vectors):\n"
            "    return vectors\n"
            "\n"
            "def select_round():\n"
            "    return craig_select_class(make_proxies())\n"
        ),
    ),
    "NES011": Example(
        path=_ANY,
        bad=(
            "from repro import obs\n"
            "\n"
            "def record(mode):\n"
            "    obs.metrics().counter(\"qscore.\" + mode).inc()\n"
        ),
        good=(
            "from repro import obs\n"
            "\n"
            "def record():\n"
            "    obs.metrics().counter(\"selection.rounds\").inc()\n"
        ),
    ),
    "NES012": Example(
        path=_SEL,
        bad=(
            "def mix(a):\n"
            "    x = a.reshape(4, 8)\n"
            "    y = a.reshape(4, 4)\n"
            "    return x @ y\n"
        ),
        good=(
            "def mix(a):\n"
            "    x = a.reshape(4, 8)\n"
            "    y = a.reshape(8, 4)\n"
            "    return x @ y\n"
        ),
    ),
    "NES013": Example(
        path=_NN,
        bad=(
            "from repro.nn.contracts import shape_contract\n"
            "\n"
            "class Pool:\n"
            "    @shape_contract(\"N,C,H,W -> N,C\")\n"
            "    def forward(self, x):\n"
            "        return x.mean(axis=3)\n"
        ),
        good=(
            "from repro.nn.contracts import shape_contract\n"
            "\n"
            "class Pool:\n"
            "    @shape_contract(\"N,C,H,W -> N,C\")\n"
            "    def forward(self, x):\n"
            "        return x.mean(axis=(2, 3))\n"
        ),
    ),
    "NES014": Example(
        path=_ANY,
        bad=(
            "import numpy as np\n"
            "\n"
            "def craig_select_class(vectors):\n"
            "    return vectors\n"
            "\n"
            "def pick(a):\n"
            "    v = a.astype(np.float64)\n"
            "    return craig_select_class(v)\n"
        ),
        good=(
            "import numpy as np\n"
            "\n"
            "def craig_select_class(vectors):\n"
            "    return vectors\n"
            "\n"
            "def pick(a):\n"
            "    v = a.astype(np.float32)\n"
            "    return craig_select_class(v)\n"
        ),
    ),
}


def _indent(snippet: str) -> str:
    return "\n".join(f"    {line}" if line else ""
                     for line in snippet.rstrip("\n").split("\n"))


def explain_rule(rule: str) -> str | None:
    """Render the ``--explain`` text for one rule id, None if unknown."""
    rule = rule.upper()
    checker = next((c for c in all_checkers() if c.rule == rule), None)
    if checker is None:
        return None
    lines = [
        f"{rule} — {checker.description}",
        f"scope: {'whole-program' if checker.project else 'per-file'}",
        f"pragma: # lint: allow-{checker.pragma}(reason)",
        "reason: required — a pragma with empty parentheses does not "
        "suppress",
    ]
    example = EXAMPLES.get(rule)
    if example is not None:
        lines += [
            "",
            f"violates ({example.path}):",
            _indent(example.bad),
            "",
            "clean:",
            _indent(example.good),
        ]
    return "\n".join(lines) + "\n"
