"""Whole-program index over the repro source tree (stdlib ``ast`` only).

The per-file rules (NES001–NES008) cannot see the bug class that
overlapped execution creates: state mutated from both the training
thread and the async selection worker, or a float64 value minted in one
module flowing into the int8 scoring path of another.  This module
builds the cross-file facts those rules need:

- :class:`FileIndex` — one file's contribution: imports, classes,
  function summaries (call sites, attribute writes, return-value
  origins).  Fully JSON-serializable so ``.lint_cache.json`` can store
  it per content hash and skip re-parsing unchanged files.
- :class:`ProjectIndex` — the assembled program: a module/symbol table,
  a conservative call graph (explicit calls, ``self.x()`` dispatch,
  attribute-type inference, class-hierarchy-analysis fallback), spawn
  edges (``threading.Thread(target=...)``, fork-pool submissions),
  worker/main reachability closures and a float64-producer fixed point.

Precision choices are deliberately conservative-but-bounded:

- ``self.attr.m()`` resolves through the attribute type inferred from
  ``self.attr = ClassName(...)`` in the owning class; attrs built from
  non-project constructors (``OrderedDict``, ``threading.Lock``)
  resolve to *nothing* — external objects are out of scope.
- unresolved method calls fall back to class-hierarchy analysis: every
  project method of that name, but only when at most
  :data:`CHA_LIMIT` classes define it and the name is not a dunder.
- float64 taint enters through explicit markers only
  (``.astype(np.float64)``, ``np.float64(...)``, ``dtype=np.float64``);
  implicit-default allocations stay NES002's per-file domain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "AttrWrite",
    "CallSite",
    "FileIndex",
    "FunctionSummary",
    "ProjectIndex",
    "build_file_index",
    "module_name_for_path",
    "CHA_LIMIT",
]

# CHA fallback gives up above this many candidate classes: a method name
# defined this widely would connect unrelated subsystems.
CHA_LIMIT = 12

# Method names that collide with builtin container/str/file/queue/thread
# methods never dispatch through CHA: otherwise every ``d.get(k)`` in
# worker code would wire the worker closure into every project class
# with a ``get`` method.  Typed receivers (``t:``/``a:``/``r:``) still
# resolve these names precisely.
CHA_STOPLIST = frozenset({
    "get", "pop", "popitem", "setdefault", "update", "clear", "copy",
    "keys", "values", "items",
    "append", "extend", "insert", "remove", "sort", "reverse",
    "index", "count",
    "add", "discard", "union", "difference", "intersection",
    "join", "split", "rsplit", "strip", "lstrip", "rstrip", "format",
    "encode", "decode", "replace", "startswith", "endswith",
    "lower", "upper", "title",
    "read", "write", "readline", "readlines", "flush", "seek", "tell",
    "close",
    "put", "get_nowait", "put_nowait",
    "start", "is_alive", "acquire", "release",
    # torch-convention module-mode protocol: ``model.train()`` /
    # ``model.eval()`` on a duck-typed model must not dispatch into
    # a project class that happens to define ``train``
    "train", "eval",
})

_POOL_SUBMIT = {
    "map", "map_async", "imap", "imap_unordered",
    "apply", "apply_async", "starmap", "starmap_async", "submit",
}
_F64_NAMES = {"float64", "double"}
_KNOWN_DTYPES = {
    "float16", "float32", "float64", "double", "half", "single",
    "int8", "int16", "int32", "int64", "uint8", "uint16", "uint32",
    "uint64", "bool_", "intp",
}
_TAINT_PASSES = 8


def module_name_for_path(path: str) -> str:
    """Dotted module name for a recorded (posix) file path.

    Anchors at the first ``repro`` segment when present so the same
    module name comes out of ``src/repro/x.py`` and ``repro/x.py``;
    fixture trees without the anchor use the full relative path.
    """
    parts = [p for p in path.replace("\\", "/").split("/") if p]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return ".".join(parts)


@dataclass
class CallSite:
    """One call (or thread/pool spawn) inside a function body.

    ``target`` encodings: ``q:<dotted>`` import/module-resolved,
    ``s:<class>:<meth>`` for ``self.meth()``, ``a:<class>:<attr>:<meth>``
    for ``self.attr.meth()``, ``t:<class>:<meth>`` for a method on a
    local whose class is known (annotation or constructor assignment),
    ``r:<inner>:<meth>`` for a method on another call's result
    (resolved through the inner callee's return annotation), and
    ``m:<meth>`` for a method call on an arbitrary value.  ``origins``
    are the taint origins flowing in through the arguments (``f64`` or
    call-target encodings).
    """

    target: str
    line: int
    col: int
    kind: str = "call"  # "call" | "spawn"
    origins: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "target": self.target, "line": self.line, "col": self.col,
            "kind": self.kind, "origins": self.origins,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CallSite":
        return cls(
            target=d["target"], line=d["line"], col=d["col"],
            kind=d["kind"], origins=list(d["origins"]),
        )


@dataclass
class AttrWrite:
    """One shared-state write: ``self.x = ...`` or a module-global.

    ``owner`` is ``c:<class qualname>`` or ``g:<module>``; ``locked``
    records whether the write sits lexically inside a ``with``-block
    whose context expression names a lock.
    """

    owner: str
    attr: str
    line: int
    col: int
    locked: bool = False

    def to_dict(self) -> dict:
        return {
            "owner": self.owner, "attr": self.attr, "line": self.line,
            "col": self.col, "locked": self.locked,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AttrWrite":
        return cls(
            owner=d["owner"], attr=d["attr"], line=d["line"],
            col=d["col"], locked=d["locked"],
        )


@dataclass
class FunctionSummary:
    """Everything the project rules need about one function."""

    qualname: str
    path: str
    line: int
    cls: str = ""  # owning class qualname, "" for module-level
    return_type: str = ""  # annotated return class (resolved dotted)
    calls: list[CallSite] = field(default_factory=list)
    writes: list[AttrWrite] = field(default_factory=list)
    return_origins: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname, "path": self.path,
            "line": self.line, "cls": self.cls,
            "return_type": self.return_type,
            "calls": [c.to_dict() for c in self.calls],
            "writes": [w.to_dict() for w in self.writes],
            "return_origins": self.return_origins,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FunctionSummary":
        return cls(
            qualname=d["qualname"], path=d["path"], line=d["line"],
            cls=d["cls"], return_type=d.get("return_type", ""),
            calls=[CallSite.from_dict(c) for c in d["calls"]],
            writes=[AttrWrite.from_dict(w) for w in d["writes"]],
            return_origins=list(d["return_origins"]),
        )


@dataclass
class FileIndex:
    """One file's contribution to the :class:`ProjectIndex`."""

    path: str
    module: str
    imports: dict = field(default_factory=dict)  # local name -> dotted target
    classes: dict = field(default_factory=dict)  # class qualname -> {meth: fn}
    attr_types: dict = field(default_factory=dict)  # cls -> {attr: "q:.."|"?"}
    functions: dict = field(default_factory=dict)  # qualname -> FunctionSummary
    absint: dict | None = None  # lowered shape/dtype mini-IR (absint module)

    def to_dict(self) -> dict:
        return {
            "path": self.path, "module": self.module,
            "imports": self.imports, "classes": self.classes,
            "attr_types": self.attr_types,
            "functions": {q: s.to_dict() for q, s in self.functions.items()},
            "absint": self.absint,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FileIndex":
        return cls(
            path=d["path"], module=d["module"], imports=dict(d["imports"]),
            classes={k: dict(v) for k, v in d["classes"].items()},
            attr_types={k: dict(v) for k, v in d["attr_types"].items()},
            functions={
                q: FunctionSummary.from_dict(s)
                for q, s in d["functions"].items()
            },
            absint=d.get("absint"),
        )


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, "" otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_lockish(expr: ast.AST) -> bool:
    name = _dotted(expr)
    if not name and isinstance(expr, ast.Call):
        name = _dotted(expr.func)
    low = name.lower()
    return any(frag in low for frag in ("lock", "mutex", "semaphore"))


class _Indexer(ast.NodeVisitor):
    """Single-pass AST walker building one :class:`FileIndex`."""

    def __init__(self, path: str, module: str):
        self.index = FileIndex(path=path, module=module)
        self._class_stack: list[str] = []
        self._fn_stack: list[FunctionSummary] = []
        self._local_defs: list[dict] = []  # per-fn: name -> qualname
        self._module_defs: dict[str, str] = {}  # module-level name -> qualname
        self._module_globals: set[str] = set()
        self._lock_depth = 0
        self._globals_declared: list[set] = []  # per-fn `global` names
        self._var_types: list[dict] = []  # per-fn: local name -> class dotted
        # per-fn taint work: (targets, value expr) + return exprs + raw calls
        self._assigns: list[list] = []
        self._returns: list[list] = []
        self._raw_calls: list[list] = []  # (CallSite, [arg exprs])

    # -- scope helpers -------------------------------------------------

    def _qualname(self, name: str) -> str:
        if self._fn_stack:
            return f"{self._fn_stack[-1].qualname}.<locals>.{name}"
        if self._class_stack:
            return f"{self._class_stack[-1]}.{name}"
        return f"{self.index.module}.{name}" if self.index.module else name

    def _lookup(self, name: str) -> str:
        """Resolve a bare name to a dotted target, "" if unknown."""
        for defs in reversed(self._local_defs):
            if name in defs:
                return defs[name]
        if name in self._module_defs:
            return self._module_defs[name]
        if name in self.index.imports:
            return self.index.imports[name]
        return ""

    def _local_type(self, name: str) -> str:
        for types in reversed(self._var_types):
            if name in types:
                return types[name]
        return ""

    def _annotation_class(self, ann) -> str:
        """Resolve a parameter/return annotation to a dotted class name.

        Handles ``Cls``, ``pkg.Cls``, string literals, ``Optional[Cls]``
        and ``Cls | None``; containers and non-class annotations come
        back empty (they are not useful method receivers).
        """
        if ann is None:
            return ""
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return ""
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            return self._annotation_class(ann.left) or self._annotation_class(
                ann.right
            )
        if isinstance(ann, ast.Subscript):
            base = _dotted(ann.value)
            if base.rsplit(".", 1)[-1] == "Optional":
                return self._annotation_class(ann.slice)
            return ""
        name = _dotted(ann)
        if not name:
            return ""
        last = name.rsplit(".", 1)[-1]
        if last == "None" or not last[:1].isupper():
            return ""
        head, _, rest = name.partition(".")
        resolved = self._lookup(head)
        if resolved:
            return f"{resolved}.{rest}" if rest else resolved
        return ""

    def _result_class(self, call: ast.Call) -> str:
        """Class a call's result is known to be, from the callee shape:
        ``ClassName(...)`` and alt-constructor ``ClassName.method(...)``
        both type as ``ClassName``."""
        encoded = self._encode_callable(call.func)
        if not encoded.startswith("q:"):
            return ""
        dotted = encoded[2:]
        parts = dotted.split(".")
        if parts[-1][:1].isupper():
            return dotted
        if len(parts) >= 2 and parts[-2][:1].isupper():
            return ".".join(parts[:-1])
        return ""

    def _encode_callable(self, func: ast.AST) -> str:
        """Encode a callable expression into a call-target string."""
        if isinstance(func, ast.Name):
            target = self._lookup(func.id)
            return f"q:{target}" if target else ""
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id == "self" and self._class_stack:
                return f"s:{self._class_stack[-1]}:{func.attr}"
            if isinstance(base, ast.Name):
                typed = self._local_type(base.id)
                if typed:
                    return f"t:{typed}:{func.attr}"
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and self._class_stack
            ):
                return f"a:{self._class_stack[-1]}:{base.attr}:{func.attr}"
            if isinstance(base, ast.Call):
                inner = self._encode_callable(base.func)
                if inner:
                    return f"r:{inner}:{func.attr}"
            dotted = _dotted(func)
            if dotted:
                head, _, rest = dotted.partition(".")
                resolved = self._lookup(head)
                if resolved:
                    return f"q:{resolved}.{rest}" if rest else f"q:{resolved}"
            return f"m:{func.attr}"
        return ""

    # -- definitions ---------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.index.imports[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            # relative import: anchor at this module's package
            pkg_parts = self.index.module.split(".")
            # a module file's package drops the last segment; an
            # __init__ module *is* its package (module name already
            # excludes the __init__ segment)
            if not self.index.path.endswith("__init__.py"):
                pkg_parts = pkg_parts[:-1]
            if node.level > 1:
                pkg_parts = pkg_parts[: len(pkg_parts) - (node.level - 1)]
            base = ".".join(pkg_parts + ([node.module] if node.module else []))
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.index.imports[local] = f"{base}.{alias.name}" if base else alias.name

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = self._qualname(node.name)
        if not self._fn_stack and not self._class_stack:
            self._module_defs[node.name] = qualname
        elif self._fn_stack:
            self._local_defs[-1][node.name] = qualname
        for dec in node.decorator_list:
            self.visit(dec)
        self._class_stack.append(qualname)
        self.index.classes.setdefault(qualname, {})
        for stmt in node.body:
            self.visit(stmt)
        self._class_stack.pop()

    def _visit_function(self, node) -> None:
        qualname = self._qualname(node.name)
        if self._fn_stack:
            self._local_defs[-1][node.name] = qualname
        elif not self._class_stack:
            self._module_defs[node.name] = qualname
        if self._class_stack and not self._fn_stack:
            self.index.classes[self._class_stack[-1]][node.name] = qualname
        for dec in node.decorator_list:
            self.visit(dec)
        summary = FunctionSummary(
            qualname=qualname,
            path=self.index.path,
            line=node.lineno,
            cls=self._class_stack[-1] if self._class_stack else "",
            return_type=self._annotation_class(node.returns),
        )
        self.index.functions[qualname] = summary
        self._fn_stack.append(summary)
        self._local_defs.append({})
        self._globals_declared.append(set())
        self._assigns.append([])
        self._returns.append([])
        self._raw_calls.append([])
        var_types: dict = {}
        args = node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            typed = self._annotation_class(arg.annotation)
            if typed:
                var_types[arg.arg] = typed
        self._var_types.append(var_types)
        outer_lock = self._lock_depth
        self._lock_depth = 0
        for stmt in node.body:
            self.visit(stmt)
        self._lock_depth = outer_lock
        self._finalize_taint(summary)
        self._fn_stack.pop()
        self._local_defs.pop()
        self._globals_declared.pop()
        self._assigns.pop()
        self._returns.pop()
        self._raw_calls.pop()
        self._var_types.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- statements ----------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        if self._globals_declared:
            self._globals_declared[-1].update(node.names)

    def _visit_with(self, node) -> None:
        lockish = any(_is_lockish(item.context_expr) for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        if lockish:
            self._lock_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if lockish:
            self._lock_depth -= 1

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def _record_write_target(self, target: ast.AST) -> None:
        if not self._fn_stack:
            # class-body fields are not module globals
            if not self._class_stack and isinstance(target, ast.Name):
                self._module_globals.add(target.id)
            return
        summary = self._fn_stack[-1]
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and summary.cls
        ):
            summary.writes.append(AttrWrite(
                owner=f"c:{summary.cls}", attr=node.attr,
                line=target.lineno, col=target.col_offset + 1,
                locked=self._lock_depth > 0,
            ))
        elif isinstance(node, ast.Name):
            declared_global = node.id in self._globals_declared[-1]
            module_level = node.id in self._module_globals
            is_subscript = isinstance(target, ast.Subscript)
            if declared_global or (module_level and is_subscript):
                summary.writes.append(AttrWrite(
                    owner=f"g:{self.index.module}", attr=node.id,
                    line=target.lineno, col=target.col_offset + 1,
                    locked=self._lock_depth > 0,
                ))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_write_target(target)
            if isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    self._record_write_target(elt)
        self._note_attr_type(node)
        if self._assigns:
            names = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if names:
                self._assigns[-1].append((names, node.value))
            if isinstance(node.value, ast.Call):
                typed = self._result_class(node.value)
                if typed:
                    for name in names:
                        self._var_types[-1][name] = typed
        self.visit(node.value)
        for target in node.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                self.visit(target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_write_target(node.target)
        if self._assigns and isinstance(node.target, ast.Name):
            self._assigns[-1].append(([node.target.id], node.value))
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._var_types and isinstance(node.target, ast.Name):
            typed = self._annotation_class(node.annotation)
            if typed:
                self._var_types[-1][node.target.id] = typed
        if node.value is not None:
            self._record_write_target(node.target)
            if self._assigns and isinstance(node.target, ast.Name):
                self._assigns[-1].append(([node.target.id], node.value))
            self.visit(node.value)

    def visit_Return(self, node: ast.Return) -> None:
        if self._returns and node.value is not None:
            self._returns[-1].append(node.value)
            self.visit(node.value)

    def _note_attr_type(self, node: ast.Assign) -> None:
        """Record ``self.attr = ClassName(...)`` for attribute dispatch."""
        if not (self._class_stack and self._fn_stack):
            return
        if len(node.targets) != 1:
            return
        target = node.targets[0]
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return
        if not isinstance(node.value, ast.Call):
            return
        encoded = self._encode_callable(node.value.func)
        if not encoded.startswith("q:"):
            return
        last = encoded.rsplit(".", 1)[-1].split(":")[-1]
        if not (last and last[0].isupper()):
            return
        table = self.index.attr_types.setdefault(self._class_stack[-1], {})
        prior = table.get(target.attr)
        if prior is not None and prior != encoded:
            table[target.attr] = "?"
        else:
            table[target.attr] = encoded

    # -- calls ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self._fn_stack:
            summary = self._fn_stack[-1]
            spawn_target = self._spawn_target(node)
            if spawn_target:
                summary.calls.append(CallSite(
                    target=spawn_target, line=node.lineno,
                    col=node.col_offset + 1, kind="spawn",
                ))
            encoded = self._encode_callable(node.func)
            if encoded:
                site = CallSite(
                    target=encoded, line=node.lineno, col=node.col_offset + 1,
                )
                summary.calls.append(site)
                args = list(node.args) + [
                    kw.value for kw in node.keywords if kw.value is not None
                ]
                self._raw_calls[-1].append((site, args))
        self.generic_visit(node)

    def _spawn_target(self, node: ast.Call) -> str:
        func_name = _dotted(node.func)
        if func_name.rsplit(".", 1)[-1] == "Thread":
            for kw in node.keywords:
                if kw.arg == "target":
                    return self._encode_callable(kw.value)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _POOL_SUBMIT
            and node.args
        ):
            target = self._encode_callable(node.args[0])
            if target:
                return target
        return ""

    # -- taint (flow-insensitive, per function) ------------------------

    def _dtype_kind(self, expr: ast.AST) -> str:
        """"f64" / "other" for recognised dtype expressions, "" unknown."""
        name = _dotted(expr)
        if name:
            last = name.rsplit(".", 1)[-1]
            if last in _F64_NAMES:
                return "f64"
            if last in _KNOWN_DTYPES:
                return "other"
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            if expr.value in _F64_NAMES:
                return "f64"
            if expr.value in _KNOWN_DTYPES:
                return "other"
        return ""

    def _expr_origins(self, expr: ast.AST, env: dict) -> set:
        if isinstance(expr, ast.Name):
            return set(env.get(expr.id, ()))
        if isinstance(expr, ast.Attribute):
            return self._expr_origins(expr.value, env)
        if isinstance(expr, ast.Call):
            return self._call_origins(expr, env)
        if isinstance(expr, (ast.BinOp,)):
            return self._expr_origins(expr.left, env) | self._expr_origins(
                expr.right, env
            )
        if isinstance(expr, ast.UnaryOp):
            return self._expr_origins(expr.operand, env)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out: set = set()
            for elt in expr.elts:
                out |= self._expr_origins(elt, env)
            return out
        if isinstance(expr, ast.Subscript):
            return self._expr_origins(expr.value, env)
        if isinstance(expr, ast.IfExp):
            return self._expr_origins(expr.body, env) | self._expr_origins(
                expr.orelse, env
            )
        if isinstance(expr, ast.Starred):
            return self._expr_origins(expr.value, env)
        if isinstance(expr, ast.NamedExpr):
            return self._expr_origins(expr.value, env)
        return set()

    def _call_origins(self, call: ast.Call, env: dict) -> set:
        func = call.func
        # .astype(dtype): explicit f64 taints, explicit other clears,
        # unknown dtype preserves whatever the base value carried
        if isinstance(func, ast.Attribute) and func.attr == "astype" and call.args:
            kind = self._dtype_kind(call.args[0])
            if kind == "f64":
                return {"f64"}
            if kind == "other":
                return set()
            return self._expr_origins(func.value, env)
        encoded = self._encode_callable(func)
        last = ""
        if isinstance(func, ast.Name):
            last = func.id
        elif isinstance(func, ast.Attribute):
            last = func.attr
        if last in _F64_NAMES:
            return {"f64"}
        for kw in call.keywords:
            if kw.arg == "dtype" and self._dtype_kind(kw.value) == "f64":
                return {"f64"}
        if last and last[0].isupper():
            # container heuristic: CamelCase constructors carry their
            # argument taint through (GradientProxy(vectors=f64) is hot)
            out: set = set()
            for arg in list(call.args) + [k.value for k in call.keywords]:
                out |= self._expr_origins(arg, env)
            return out
        return {encoded} if encoded else set()

    def _finalize_taint(self, summary: FunctionSummary) -> None:
        assigns = self._assigns[-1]
        env: dict = {}
        for _ in range(_TAINT_PASSES):
            changed = False
            for names, value in assigns:
                origins = self._expr_origins(value, env)
                for name in names:
                    if not origins <= env.get(name, set()):
                        env.setdefault(name, set()).update(origins)
                        changed = True
            if not changed:
                break
        returns: set = set()
        for expr in self._returns[-1]:
            returns |= self._expr_origins(expr, env)
        summary.return_origins = sorted(returns)
        for site, args in self._raw_calls[-1]:
            origins: set = set()
            for arg in args:
                origins |= self._expr_origins(arg, env)
            site.origins = sorted(origins)


def build_file_index(source: str, path: str) -> FileIndex | None:
    """Index one file; ``None`` when the file does not parse (the
    engine's NES000 already reports that)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return None
    indexer = _Indexer(path, module_name_for_path(path))
    # pre-seed module-level names so helpers defined *after* their
    # callers (the common "public first" layout) still resolve
    for stmt in tree.body:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            indexer._module_defs[stmt.name] = (
                f"{indexer.index.module}.{stmt.name}"
                if indexer.index.module
                else stmt.name
            )
    indexer.visit(tree)
    # lower every function to the shape/dtype mini-IR (absint rides the
    # same per-file cache entry and fork-pool fan-out as the summaries)
    from repro.analysis.absint import lower_module

    indexer.index.absint = lower_module(
        tree, indexer.index.module, path, indexer.index.imports
    )
    return indexer.index


class ProjectIndex:
    """The assembled program: symbol tables, call graph, reachability."""

    def __init__(self, file_indexes: list[FileIndex]):
        self.files: dict[str, FileIndex] = {fi.path: fi for fi in file_indexes}
        self.modules: dict[str, FileIndex] = {}
        self.functions: dict[str, FunctionSummary] = {}
        self.classes: dict[str, dict] = {}
        self.attr_types: dict[str, dict] = {}
        self.method_index: dict[str, list] = {}
        for fi in file_indexes:
            # first writer wins on module-name collisions (fixture trees)
            self.modules.setdefault(fi.module, fi)
            self.functions.update(fi.functions)
            for cls, methods in fi.classes.items():
                self.classes.setdefault(cls, {}).update(methods)
            for cls, attrs in fi.attr_types.items():
                self.attr_types.setdefault(cls, {}).update(attrs)
        for cls, methods in self.classes.items():
            for name, fn in methods.items():
                self.method_index.setdefault(name, []).append(fn)
        for name in self.method_index:
            self.method_index[name].sort()
        self._resolve_cache: dict[str, frozenset] = {}
        self._worker: dict[str, str] | None = None
        self._main: set | None = None
        self._producers: set | None = None

    # -- call-target resolution ----------------------------------------

    def resolve(self, target: str) -> frozenset:
        """Project functions a call-target encoding may dispatch to."""
        cached = self._resolve_cache.get(target)
        if cached is not None:
            return cached
        self._resolve_cache[target] = frozenset()  # cycle guard
        kind, _, rest = target.partition(":")
        if kind == "q":
            out = self._resolve_q(rest, depth=0)
        elif kind == "s":
            cls, _, meth = rest.partition(":")
            fn = self.classes.get(cls, {}).get(meth)
            out = frozenset([fn]) if fn else self._cha(meth)
        elif kind == "a":
            cls, _, tail = rest.partition(":")
            attr, _, meth = tail.partition(":")
            out = self._resolve_attr_call(cls, attr, meth)
        elif kind == "t":
            cls, _, meth = rest.rpartition(":")
            out = self._resolve_typed(cls, meth)
        elif kind == "r":
            inner, _, meth = rest.rpartition(":")
            out = self._resolve_result_call(inner, meth)
        elif kind == "m":
            out = self._cha(rest)
        else:
            out = frozenset()
        self._resolve_cache[target] = out
        return out

    def _cha(self, meth: str) -> frozenset:
        if meth.startswith("__") or meth in CHA_STOPLIST:
            return frozenset()
        cands = self.method_index.get(meth, [])
        if 0 < len(cands) <= CHA_LIMIT:
            return frozenset(cands)
        return frozenset()

    def _resolve_typed(self, cls: str, meth: str) -> frozenset:
        """Dispatch on a receiver whose class is known precisely."""
        if cls in self.classes:
            fn = self.classes[cls].get(meth)
            return frozenset([fn]) if fn else self._cha(meth)
        return frozenset()  # external class: no project edges

    def _resolve_result_call(self, inner: str, meth: str) -> frozenset:
        """Dispatch on a call result via the callee's return annotation."""
        if inner.startswith("q:") and inner[2:] in self.classes:
            return self._resolve_typed(inner[2:], meth)
        classes = set()
        for callee in self.resolve(inner):
            summary = self.functions.get(callee)
            if summary is not None and summary.return_type:
                classes.add(summary.return_type)
        if not classes:
            return self._cha(meth)
        out: set = set()
        for cls in classes:
            out |= self._resolve_typed(cls, meth)
        return frozenset(out)

    def _resolve_attr_call(self, cls: str, attr: str, meth: str) -> frozenset:
        encoded = self.attr_types.get(cls, {}).get(attr)
        if encoded is None or encoded == "?":
            return self._cha(meth)
        dotted = encoded[2:] if encoded.startswith("q:") else encoded
        if dotted in self.classes:
            fn = self.classes[dotted].get(meth)
            return frozenset([fn]) if fn else self._cha(meth)
        # typed by a non-project constructor: external object, no edges
        return frozenset()

    def _resolve_q(self, dotted: str, depth: int) -> frozenset:
        if depth > 5 or not dotted:
            return frozenset()
        if dotted in self.functions:
            return frozenset([dotted])
        if dotted in self.classes:
            init = f"{dotted}.__init__"
            return frozenset([init]) if init in self.functions else frozenset()
        # chase package re-exports: repro.obs.span -> repro.obs.tracer.span
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:i])
            fi = self.modules.get(prefix)
            if fi is None:
                continue
            forwarded = fi.imports.get(parts[i])
            if forwarded:
                rest = parts[i + 1:]
                return self._resolve_q(".".join([forwarded] + rest), depth + 1)
        return frozenset()

    # -- reachability --------------------------------------------------

    def _closure(self, roots: dict, follow_spawns: bool) -> dict:
        seen = dict(roots)
        stack = list(roots)
        while stack:
            fn = stack.pop()
            summary = self.functions.get(fn)
            if summary is None:
                continue
            via = seen[fn]
            for site in summary.calls:
                if site.kind == "spawn" and not follow_spawns:
                    continue
                for callee in self.resolve(site.target):
                    if callee not in seen:
                        seen[callee] = via
                        stack.append(callee)
        return seen

    def spawn_sites(self) -> list:
        """(spawning fn qualname, CallSite) for every spawn edge."""
        out = []
        for qualname in sorted(self.functions):
            for site in self.functions[qualname].calls:
                if site.kind == "spawn":
                    out.append((qualname, site))
        return out

    def worker_reachable(self) -> dict:
        """fn qualname -> entry provenance, closure from spawn targets."""
        if self._worker is None:
            roots: dict[str, str] = {}
            for spawner, site in self.spawn_sites():
                for fn in sorted(self.resolve(site.target)):
                    roots.setdefault(
                        fn, f"spawned by {spawner} (line {site.line})"
                    )
            self._worker = self._closure(roots, follow_spawns=True)
        return self._worker

    def main_reachable(self) -> set:
        """Functions reachable without crossing a spawn edge.

        Every function that is not itself a spawn target is a potential
        main-thread root (the engine cannot see external callers), so
        this is "everything except spawn-only code" — conservative in
        exactly the direction NES009 needs.
        """
        if self._main is None:
            spawn_targets = set()
            for _, site in self.spawn_sites():
                spawn_targets |= self.resolve(site.target)
            roots = {
                fn: fn for fn in self.functions if fn not in spawn_targets
            }
            self._main = set(self._closure(roots, follow_spawns=False))
        return self._main

    # -- float64 producers ---------------------------------------------

    def f64_producers(self) -> set:
        """Functions whose return value carries float64 taint."""
        if self._producers is None:
            producers: set = set()
            changed = True
            while changed:
                changed = False
                for qualname, summary in self.functions.items():
                    if qualname in producers:
                        continue
                    for origin in summary.return_origins:
                        if self._origin_tainted(origin, producers):
                            producers.add(qualname)
                            changed = True
                            break
            self._producers = producers
        return self._producers

    def _origin_tainted(self, origin: str, producers: set) -> bool:
        if origin == "f64":
            return True
        return any(fn in producers for fn in self.resolve(origin))

    def origin_tainted(self, origin: str) -> bool:
        return self._origin_tainted(origin, self.f64_producers())

    def taint_witness(self, origin: str) -> str:
        """Human-readable producer for a tainted origin."""
        if origin == "f64":
            return "a float64 cast/allocation in this function"
        producers = self.f64_producers()
        for fn in sorted(self.resolve(origin)):
            if fn in producers:
                return fn
        return origin

    # -- shared-state writes -------------------------------------------

    def attr_write_sites(self) -> dict:
        """(owner, attr) -> [(fn qualname, AttrWrite)], sorted."""
        grouped: dict = {}
        for qualname in sorted(self.functions):
            for write in self.functions[qualname].writes:
                grouped.setdefault((write.owner, write.attr), []).append(
                    (qualname, write)
                )
        return grouped
