"""NES001 — global-state randomness in determinism-critical modules.

PR 2 made parallel selection bit-identical to serial by deriving every
random choice from SeedSequence-keyed ``Generator`` streams.  Any code
under ``repro.selection``, ``repro.parallel`` or ``repro.nn`` that draws
from *global* RNG state — ``np.random.rand()`` and friends, the stdlib
``random`` module, or an entropy-seeded ``default_rng()`` — silently
breaks that contract: the result depends on call order, worker identity
or wall clock.  The fix is always the same: accept a
``np.random.Generator`` (threaded from config / SeedSequence) and use it.
"""

from __future__ import annotations

import ast

from repro.analysis.registry import Checker, register
from repro.analysis.rules._util import (
    dotted_name,
    in_module,
    module_aliases,
    numpy_aliases,
)

SCOPE = ("repro/selection/", "repro/parallel/", "repro/nn/")

# np.random attributes that are fine to *reference* (class/constructor
# names, not global-state draws).
_ALLOWED_NP_RANDOM = {"Generator", "SeedSequence", "BitGenerator"}
# Constructors that are deterministic only when explicitly seeded.
_SEED_REQUIRED = {"default_rng", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937"}
# time.* calls that smuggle the wall clock into a seed.
_CLOCK_CALLS = {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter"}


@register
class DeterminismChecker(Checker):
    rule = "NES001"
    pragma = "determinism"
    description = (
        "global-state randomness (np.random.* module calls, stdlib random, "
        "unseeded/time-seeded RNG constructors) in repro.selection, "
        "repro.parallel or repro.nn"
    )

    def check(self, ctx):
        if not in_module(ctx.path, SCOPE):
            return
        np_names = numpy_aliases(ctx.tree)
        random_names = module_aliases(ctx.tree, "random")
        time_names = module_aliases(ctx.tree, "time") or {"time"}
        from_random = {
            alias.asname or alias.name
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ImportFrom) and node.module == "random"
            for alias in node.names
        }

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")

            # np.random.<fn>(...)
            if len(parts) == 3 and parts[0] in np_names and parts[1] == "random":
                fn = parts[2]
                if fn in _ALLOWED_NP_RANDOM:
                    continue
                if fn in _SEED_REQUIRED:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            ctx,
                            node,
                            f"np.random.{fn}() without a seed draws OS entropy — "
                            "results differ run to run",
                            hint="thread a Generator/SeedSequence from config",
                        )
                    elif self._clock_seeded(node, time_names):
                        yield self.finding(
                            ctx,
                            node,
                            f"np.random.{fn}(...) seeded from the wall clock",
                            hint="derive seeds from config/SeedSequence, not time",
                        )
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"np.random.{fn}() uses global RNG state — selection "
                    "results then depend on call order",
                    hint="use an explicit np.random.Generator threaded from "
                    "config/SeedSequence",
                )
                continue

            # stdlib random module: random.<fn>(...) or from-imported names.
            if len(parts) == 2 and parts[0] in random_names:
                yield self.finding(
                    ctx,
                    node,
                    f"stdlib random.{parts[1]}() uses process-global state",
                    hint="use np.random.Generator streams instead",
                )
                continue
            if len(parts) == 1 and parts[0] in from_random:
                yield self.finding(
                    ctx,
                    node,
                    f"stdlib random.{parts[0]}() uses process-global state",
                    hint="use np.random.Generator streams instead",
                )

    @staticmethod
    def _clock_seeded(call: ast.Call, time_names: set[str]) -> bool:
        for arg in ast.walk(call):
            if arg is call or not isinstance(arg, ast.Call):
                continue
            name = dotted_name(arg.func)
            if name is None:
                continue
            parts = name.split(".")
            if (
                len(parts) == 2
                and parts[0] in time_names
                and parts[1] in _CLOCK_CALLS
            ):
                return True
        return False
