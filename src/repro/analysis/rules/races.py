"""NES009 — cross-thread shared-state writes without lock discipline.

The overlapped pipeline (PR 5) runs selection on a daemon thread while
the training thread keeps mutating trainer/selector state; the fork
pool's serial fallback runs the same functions on the main thread that
``pool.map`` otherwise runs in workers.  Any attribute written both
from worker-reachable code and from main-thread code is a potential
race unless the write is lock-guarded.

The rule flags the *worker-side unguarded write sites*: for every
``(owner, attr)`` pair written in at least one worker-reachable
function AND at least one main-reachable function, each worker-side
write not lexically inside a ``with <lock>:`` block is reported.  A
function reachable both ways (serial fallback) counts on both sides —
that is the fork-pool case, not a false positive.

Suppress with ``# lint: allow-shared-state(reason)`` when an external
happens-before edge (``Thread.join()`` before the main-thread access,
single-owner handoff) serialises the accesses; the reason should name
that edge.
"""

from __future__ import annotations

from repro.analysis.registry import ProjectChecker, register

__all__ = ["SharedStateRace"]

# writes inside constructors initialise a fresh object no other thread
# can reach yet; they count as evidence the attribute exists on the
# main side but are never flagged themselves
_CONSTRUCTORS = {"__init__", "__new__", "__post_init__"}


def _is_constructor(qualname: str) -> bool:
    return qualname.rsplit(".", 1)[-1] in _CONSTRUCTORS


@register
class SharedStateRace(ProjectChecker):
    rule = "NES009"
    pragma = "shared-state"
    description = (
        "attribute written from both a worker-thread entry point and "
        "main-thread code without a lock"
    )

    def check_project(self, index):
        worker = index.worker_reachable()
        main = index.main_reachable()
        for (owner, attr), sites in sorted(index.attr_write_sites().items()):
            worker_sites = [(fn, w) for fn, w in sites if fn in worker]
            has_main_write = any(fn in main for fn, _ in sites)
            if not worker_sites or not has_main_write:
                continue
            kind, _, name = owner.partition(":")
            what = (
                f"module global {name}.{attr}"
                if kind == "g"
                else f"{name}.{attr}"
            )
            for fn, write in worker_sites:
                if write.locked or _is_constructor(fn):
                    continue
                summary = index.functions[fn]
                yield self.project_finding(
                    path=summary.path,
                    line=write.line,
                    col=write.col,
                    message=(
                        f"unlocked write to {what} in {fn}, which is "
                        f"worker-reachable ({worker[fn]}) while the same "
                        "attribute is also written from main-thread code"
                    ),
                    hint=(
                        "guard with a lock, or pragma "
                        "allow-shared-state(reason) naming the "
                        "happens-before edge"
                    ),
                )
