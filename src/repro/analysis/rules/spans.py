"""NES006 — trace spans are context managers: ``with obs.span(...)``.

A :class:`~repro.obs.tracer.Span`'s id is derived at creation from the
tracer's open-span stack, but its record is only emitted on
``__exit__``: a span created and never ``with``-managed silently
vanishes from the trace, and one entered late misattributes every span
opened in between as its child.  This check requires each
``span(...)`` / ``*.span(...)`` call to be the context expression of a
``with`` item.

Factory shapes are exempt: a span call in return position hands the
un-entered span to a caller who will ``with``-manage it (the
module-level :func:`repro.obs.span` helper is exactly that shape) —
the same ownership-transfer idea as NES004's returned-segment
exemption.  Spans finished in pool workers cannot be ``with``-managed
in the parent at all; forward those through
:meth:`~repro.obs.tracer.Tracer.add_completed` instead.
"""

from __future__ import annotations

import ast

from repro.analysis.registry import Checker, register
from repro.analysis.rules._util import dotted_name


def _is_span_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    if name is None:
        return False
    return name == "span" or name.endswith(".span")


@register
class SpanWithChecker(Checker):
    rule = "NES006"
    pragma = "span-with"
    description = (
        "span(...) must be the context expression of a `with` "
        "(or be returned un-entered to the caller)"
    )

    def check(self, ctx):
        managed: set[ast.Call] = set()
        returned: set[ast.Call] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if _is_span_call(item.context_expr):
                        managed.add(item.context_expr)
            elif isinstance(node, ast.Return) and node.value is not None:
                # Only a *direct* return (possibly in a tuple/list)
                # transfers ownership; `return f(span(...))` both enters
                # nothing and leaks the id it already consumed.
                candidates = (
                    node.value.elts
                    if isinstance(node.value, (ast.Tuple, ast.List))
                    else [node.value]
                )
                for sub in candidates:
                    if _is_span_call(sub):
                        returned.add(sub)

        for node in ast.walk(ctx.tree):
            if not _is_span_call(node):
                continue
            if node in managed or node in returned:
                continue
            yield self.finding(
                ctx,
                node,
                "span created outside a `with` statement: its record is "
                "only emitted on __exit__, and children opened before "
                "entry are misattributed",
                hint="use `with obs.span(...) as sp:`; spans finished in "
                "pool workers go through Tracer.add_completed()",
            )
