"""NES007 — buffer-pool leases must be released on every exit path.

A :class:`~repro.nn.scratch.BufferLease` that escapes without a
``release()`` is not a crash — the array is eventually garbage-collected
— but it silently re-introduces the steady-state allocation churn the
pool exists to remove, and the pool's ``outstanding`` accounting drifts,
which is exactly the failure mode the allocation-count tests gate on.
Same dataflow shape as NES004's shared-memory check: every lease bound
in a function scope must be released on *all* exits.

Accepted lifecycle shapes (mirroring NES004):

- ``with pool.lease(...) as lease: ...`` — the lease is a context
  manager;
- ``lease.release()`` inside a ``finally`` suite (conditional release
  behind a handed-off flag counts: the release call is what matters);
- ownership transfer — binding to ``self.<attr>`` (the object's own
  teardown releases it), returning the lease (directly, or inside a
  tuple/list, possibly nested — the prefetch loader ships leases to the
  consumer as ``(batch, (x_lease, y_lease))``).
"""

from __future__ import annotations

import ast

from repro.analysis.registry import Checker, register
from repro.analysis.rules._util import dotted_name
from repro.analysis.rules.shm import _own_nodes, _with_context_creations

_CREATOR_TAILS = {"lease", "BufferLease"}


def _is_lease_creation(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    if name is None:
        # `scratch_pool().lease(...)`: the chain root is a call, so
        # dotted_name bails — classify off the attribute tail alone.
        return (
            isinstance(node.func, ast.Attribute) and node.func.attr in _CREATOR_TAILS
        )
    return any(name == tail or name.endswith("." + tail) for tail in _CREATOR_TAILS)


def _name_released_in_finally(func: ast.AST, name: str) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        for inner in node.finalbody:
            for sub in ast.walk(inner):
                if (
                    isinstance(sub, ast.Attribute)
                    and sub.attr == "release"
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == name
                ):
                    return True
    return False


def _name_is_returned(func: ast.AST, name: str) -> bool:
    """Direct return of the name, including nested tuple/list containers.

    ``return batch, (x_lease, y_lease)`` transfers both leases to the
    caller; ``return lease.array`` only reads through the lease and does
    not.
    """
    for node in ast.walk(func):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        stack = [node.value]
        while stack:
            sub = stack.pop()
            if isinstance(sub, (ast.Tuple, ast.List)):
                stack.extend(sub.elts)
            elif isinstance(sub, ast.Name) and sub.id == name:
                return True
    return False


def _returned_creations(func: ast.AST) -> set[ast.Call]:
    returned: set[ast.Call] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Call):
                    returned.add(sub)
    return returned


@register
class PoolLeaseChecker(Checker):
    rule = "NES007"
    pragma = "pool-lease"
    description = (
        "BufferPool lease not released on all exit paths "
        "(with block, try/finally release(), or ownership transfer)"
    )

    def check(self, ctx):
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            managed = _with_context_creations(func)
            returned = _returned_creations(func)
            own = list(_own_nodes(func))
            for node in own:
                if not isinstance(node, ast.Assign):
                    continue
                if not _is_lease_creation(node.value) or node.value in managed:
                    continue
                if all(isinstance(t, ast.Attribute) for t in node.targets):
                    continue  # self.<attr> = lease: owned by the object
                targets = [t for t in node.targets if isinstance(t, ast.Name)]
                if not targets:
                    continue
                name = targets[0].id
                if _name_released_in_finally(func, name):
                    continue
                if _name_is_returned(func, name):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"buffer lease {name!r} may never return to its pool: "
                    "no release() on all exit paths",
                    hint="wrap in `with`, release in a try/finally, or "
                    "hand ownership off (return / self-attribute)",
                )
            for node in own:
                if (
                    isinstance(node, ast.Expr)
                    and _is_lease_creation(node.value)
                    and node.value not in managed
                    and node.value not in returned
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "buffer lease created and immediately dropped: "
                        "nothing can ever release it",
                        hint="bind it and release in try/finally, or use "
                        "a with block",
                    )
