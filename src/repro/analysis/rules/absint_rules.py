"""NES012/NES013/NES014 — shape and dtype facts proved by abstract
interpretation (:mod:`repro.analysis.absint`).

All three rules consume one shared whole-program analysis pass, memoized
on the :class:`~repro.analysis.project.ProjectIndex`, so the interpreter
runs once per scan no matter how many of the rules are selected:

- **NES012** — statically-provable shape errors (incompatible matmul
  inner dims, unbroadcastable elementwise operands, concat non-axis
  mismatches, inconsistent einsum index bindings) inside the modules
  whose shapes are load-bearing: ``selection/``, ``nn/``, ``parallel/``.
  The interpreter is optimistic — an unknown dim unifies with anything —
  so every finding is a proof, not a heuristic.
- **NES013** — contract conformance: a function whose inferred return
  shape cannot unify with its declared ``@shape_contract`` right-hand
  side.  This upgrades NES005 from "the decorator is present and the
  pipeline composes" to "the body implements what it declares".
- **NES014** — dtype drift: a value inferred float64 (explicit
  ``astype``/``np.float64``/``dtype=`` markers, propagated through
  calls, containers and attribute loads) reaching a qscore / pairwise /
  ``craig_select_class`` / smartssd-kernel sink while the declared
  ``NeSSAConfig.similarity_precision`` is narrower.  This subsumes
  NES010's name-based taint with real value flow, and each finding
  carries the producer → call path witness chain in ``related`` (SARIF
  ``relatedLocations``).
"""

from __future__ import annotations

from repro.analysis.absint import analysis_for
from repro.analysis.registry import ProjectChecker, register
from repro.analysis.rules._util import in_module

__all__ = ["ShapeError", "ContractConformance", "DtypeDrift"]

_SHAPE_SCOPE = ("repro/selection/", "repro/nn/", "repro/parallel/")


def _events(index, rule: str):
    for event in analysis_for(index).events:
        if event["rule"] == rule:
            yield event


class _AbsintRule(ProjectChecker):
    """Shared event → finding plumbing for the absint-backed rules."""

    def _emit_events(self, index, events):
        for event in events:
            finding = self.project_finding(
                path=event["path"], line=event["line"], col=event["col"],
                message=event["message"], hint=event["hint"],
            )
            if event.get("related"):
                finding.related = list(event["related"])
            yield finding


@register
class ShapeError(_AbsintRule):
    rule = "NES012"
    pragma = "shape"
    description = (
        "statically-provable shape error (matmul/broadcast/concat/"
        "einsum) in selection/, nn/ or parallel/"
    )

    def check_project(self, index):
        events = (
            e for e in _events(index, self.rule)
            if in_module(e["path"], _SHAPE_SCOPE)
        )
        yield from self._emit_events(index, events)


@register
class ContractConformance(_AbsintRule):
    rule = "NES013"
    pragma = "shape-conformance"
    description = (
        "inferred return shape cannot unify with the declared "
        "@shape_contract right-hand side"
    )

    def check_project(self, index):
        yield from self._emit_events(index, _events(index, self.rule))


@register
class DtypeDrift(_AbsintRule):
    rule = "NES014"
    pragma = "dtype-drift"
    description = (
        "float64 value (beyond the declared similarity precision) "
        "reaches a qscore/pairwise/craig/kernel sink"
    )

    def check_project(self, index):
        yield from self._emit_events(index, _events(index, self.rule))
