"""Shared AST helpers for the rule modules."""

from __future__ import annotations

import ast

__all__ = ["dotted_name", "in_module", "numpy_aliases", "module_aliases"]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def in_module(path: str, prefixes: tuple[str, ...]) -> bool:
    """Does the recorded path fall inside any of the package prefixes?

    Prefixes are path fragments like ``"repro/selection/"`` or exact
    file suffixes like ``"repro/smartssd/kernel.py"``; matching is on
    the posix recorded path, so it works for both the repo tree
    (``src/repro/...``) and test fixture trees (``fixtures/repro/...``).
    """
    return any(p in path for p in prefixes)


def module_aliases(tree: ast.Module, module: str) -> set[str]:
    """Names the file binds to ``module`` (``import numpy as np`` -> np)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name.split(".")[0])
    return aliases


def numpy_aliases(tree: ast.Module) -> set[str]:
    """Aliases for numpy in this file (defaults to {"np", "numpy"})."""
    aliases = module_aliases(tree, "numpy")
    return aliases or {"np", "numpy"}
