"""NES005 — every public ``forward`` in repro.nn carries a shape contract.

The NN layer's hand-written backward passes make shape bugs easy to
introduce and hard to localize (a transposed conv weight surfaces three
modules downstream).  :mod:`repro.nn.contracts` gives every forward a
declarative ``"N,C,H,W -> N,K,H',W'"`` spec; this rule verifies

1. every concrete single-input ``forward(self, x)`` method under
   ``repro/nn/`` is decorated with ``@shape_contract(...)`` whose spec
   string parses (abstract forwards whose body only raises are exempt);
2. for the real ``repro/nn/resnet.py``, the declared contracts *compose*
   along the architecture's pipelines (stem -> blocks -> pool -> head),
   and each composite's declared output arity matches what its chain
   produces — so a contract edit that breaks the network's dataflow
   fails lint, not a training run three layers later.
"""

from __future__ import annotations

import ast

from repro.analysis.registry import Checker, register
from repro.analysis.rules._util import dotted_name, in_module

SCOPE = ("repro/nn/",)

# Pipelines whose declared contracts must compose, verified against the
# runtime registry once per lint of the real resnet module.  Each entry:
# (composite qualname or None, chain of contract qualnames).
_CHAINS = [
    (
        "BasicBlock.forward",
        [
            "Conv2d.forward",
            "BatchNorm2d.forward",
            "ReLU.forward",
            "Conv2d.forward",
            "BatchNorm2d.forward",
            "ReLU.forward",
        ],
    ),
    (
        "Bottleneck.forward",
        [
            "Conv2d.forward",
            "BatchNorm2d.forward",
            "ReLU.forward",
            "Conv2d.forward",
            "BatchNorm2d.forward",
            "ReLU.forward",
            "Conv2d.forward",
            "BatchNorm2d.forward",
            "ReLU.forward",
        ],
    ),
    (
        "ResNet.features",
        [
            "Conv2d.forward",
            "BatchNorm2d.forward",
            "ReLU.forward",
            "BasicBlock.forward",
            "Bottleneck.forward",
            "GlobalAvgPool2d.forward",
        ],
    ),
    (
        "ResNet.forward",
        [
            "ResNet.features",
            "Linear.forward",
        ],
    ),
]


def _is_abstract(func: ast.FunctionDef) -> bool:
    body = list(func.body)
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ):
        body = body[1:]  # skip docstring
    return len(body) == 1 and isinstance(body[0], ast.Raise)


def _is_single_input_forward(func: ast.FunctionDef) -> bool:
    if func.name != "forward":
        return False
    args = func.args
    if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs:
        return False
    return len(args.args) == 2  # (self, x)


def _contract_decorator(func: ast.FunctionDef) -> ast.Call | None:
    for dec in func.decorator_list:
        if isinstance(dec, ast.Call):
            name = dotted_name(dec.func)
            if name is not None and name.split(".")[-1] == "shape_contract":
                return dec
    return None


@register
class ShapeContractChecker(Checker):
    rule = "NES005"
    pragma = "shape-contract"
    description = (
        "public forward(self, x) in repro.nn without a parseable "
        "@shape_contract, or declared resnet contracts that do not compose"
    )

    def check(self, ctx):
        if not in_module(ctx.path, SCOPE):
            return
        from repro.nn.contracts import ContractError, parse_spec

        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for func in cls.body:
                if not isinstance(func, ast.FunctionDef):
                    continue
                if not _is_single_input_forward(func) or _is_abstract(func):
                    continue
                dec = _contract_decorator(func)
                if dec is None:
                    yield self.finding(
                        ctx,
                        func,
                        f"{cls.name}.forward has no @shape_contract",
                        hint='decorate with @shape_contract("N,C,H,W -> ...") '
                        "from repro.nn.contracts",
                    )
                    continue
                spec_node = dec.args[0] if dec.args else None
                if not (
                    isinstance(spec_node, ast.Constant)
                    and isinstance(spec_node.value, str)
                ):
                    yield self.finding(
                        ctx,
                        dec,
                        f"{cls.name}.forward contract must be a literal "
                        "string (the checker reads it statically)",
                    )
                    continue
                try:
                    parse_spec(spec_node.value)
                except ContractError as exc:
                    yield self.finding(
                        ctx, dec, f"{cls.name}.forward contract invalid: {exc}"
                    )

        if ctx.path.endswith("repro/nn/resnet.py"):
            yield from self._check_composition(ctx)

    def _check_composition(self, ctx):
        """Verify declared contracts compose along the resnet pipelines."""
        try:
            import repro.nn.resnet  # noqa: F401 - populates the registry
            from repro.nn.contracts import CONTRACTS, ContractError, check_chain
        # lint: allow-broad-except(any import failure is converted into a finding below, not swallowed)
        except Exception as exc:
            yield self.finding(
                ctx,
                ctx.tree,
                f"cannot verify contract composition: repro.nn failed to "
                f"import ({exc})",
            )
            return
        for composite, chain in _CHAINS:
            specs = []
            missing = [q for q in chain + [composite] if q not in CONTRACTS]
            if missing:
                yield self.finding(
                    ctx,
                    ctx.tree,
                    f"contract chain {composite} cannot be verified: "
                    f"{', '.join(missing)} carry no @shape_contract",
                )
                continue
            specs = [CONTRACTS[q] for q in chain]
            try:
                out = check_chain(specs)
            except ContractError as exc:
                yield self.finding(
                    ctx,
                    ctx.tree,
                    f"contracts along {composite} do not compose: {exc}",
                )
                continue
            declared_out = CONTRACTS[composite].split("->")[1].strip()
            declared_arity = len(declared_out.split(","))
            if (
                out is not None
                and "*" not in out
                and "..." not in out
                and "..." not in declared_out
                and declared_out != "*"
                and len(out) != declared_arity
            ):
                yield self.finding(
                    ctx,
                    ctx.tree,
                    f"{composite} declares {declared_arity}-dim output but "
                    f"its chain produces {len(out)} dims ({','.join(out)})",
                )
