"""NES010 — interprocedural float64 escape into the int8 scoring path.

NES002/NES008 are per-file: they see a float64 minted *inside* a
dtype-accounted module.  They cannot see ``compute_gradient_proxies``
(gradients.py) returning a float64 array that ``NeSSASelector.select``
(selector.py) then feeds to ``quantize_proxies`` (qscore.py).  This
rule closes that gap with the ProjectIndex's producer fixed point:

- a function is a *float64 producer* when its return value carries f64
  taint — an explicit ``.astype(np.float64)`` / ``np.float64(...)`` /
  ``dtype=np.float64`` marker, or (transitively) the result of calling
  another producer;
- a call site is *hot* when its resolved target lives in a ``qscore``
  module or is ``craig_select_class`` — the paths whose byte accounting
  and int8 exactness assume no float64 sneaks in;
- a finding is raised when a tainted value flows into a hot call from
  *outside* the qscore module itself (inside it, NES008 already rules).

Suppress with ``# lint: allow-f64-escape(reason)`` at the call site
when the hot path is the documented fp64 reference (``precision=
"float64"`` CRAIG mode) or the value is quantized before the kernels.
"""

from __future__ import annotations

from repro.analysis.registry import ProjectChecker, register

__all__ = ["Float64Escape"]


def _is_hot(dotted: str) -> bool:
    parts = dotted.split(".")
    return "qscore" in parts[:-1] or parts[-1] == "craig_select_class"


class _HotCall:
    __slots__ = ("fn", "site", "dotted")

    def __init__(self, fn, site, dotted):
        self.fn = fn
        self.site = site
        self.dotted = dotted


@register
class Float64Escape(ProjectChecker):
    rule = "NES010"
    pragma = "f64-escape"
    description = (
        "float64-producing value flows into a selection/qscore or "
        "craig_select_class hot path"
    )

    def check_project(self, index):
        for fn in sorted(index.functions):
            summary = index.functions[fn]
            if _in_qscore_module(fn):
                continue
            for site in summary.calls:
                if site.kind != "call" or not site.target.startswith("q:"):
                    continue
                dotted = site.target[2:]
                if not _is_hot(dotted):
                    continue
                tainted = [o for o in site.origins if index.origin_tainted(o)]
                if not tainted:
                    continue
                witness = index.taint_witness(tainted[0])
                finding = self.project_finding(
                    path=summary.path,
                    line=site.line,
                    col=site.col,
                    message=(
                        f"float64 value reaches hot path {dotted} "
                        f"(produced by {witness})"
                    ),
                    hint=(
                        "cast to float32 before the hot call, or pragma "
                        "allow-f64-escape(reason) if this is the fp64 "
                        "reference path"
                    ),
                )
                producer = index.functions.get(witness)
                if producer is not None:
                    finding.related = [{
                        "path": producer.path,
                        "line": producer.line,
                        "message": f"float64 produced by {witness}",
                    }]
                yield finding


def _in_qscore_module(qualname: str) -> bool:
    return "qscore" in qualname.split(".")[:-1]
