"""NES008 — float64 leaking into the int8 quantized scoring engine.

:mod:`repro.selection.qscore` guarantees "no float64 intermediates":
similarities are integer Gram-identity distances dequantized with one
float32 rescale, exactly what the FPGA similarity lanes execute.  A
float64 sneaking in is silent in two ways — numpy upcasts int32 buffers
to float64 on ``np.sqrt`` / true division without complaint, and the
result still *looks* right (it is usually slightly different rounding,
which can flip a greedy tie and break the bit-identity the rescore
cache depends on).  This rule statically rejects, inside the qscore
module only:

- ``.astype`` to float64 (``np.float64``, ``"float64"``, bare ``float``);
- ``np.float64(...)`` scalar/array construction;
- float64 dtype arguments (keyword or allocator-positional) — in this
  module even an *explicit* float64 needs a justification pragma;
- ``np.sqrt`` whose operand is not visibly float32 (an
  ``.astype(np.float32)`` call or ``np.float32(...)``) — the int32
  distance buffer would upcast to float64 right at the dequant rescale;
- calls into :func:`repro.selection.facility.similarity_from_distances`,
  the fp64 reference the quantized path exists to avoid.

Suppress with ``# lint: allow-upcast(reason)`` where a float64 boundary
value is intentional (e.g. the empty weights vector matching
``medoid_weights``' float64 contract).
"""

from __future__ import annotations

import ast

from repro.analysis.registry import Checker, register
from repro.analysis.rules._util import dotted_name, in_module, numpy_aliases

SCOPE = ("repro/selection/qscore",)

# allocator -> positional index where dtype may appear (mirrors NES002)
_ALLOCATORS = {"zeros": 1, "empty": 1, "ones": 1, "full": 2, "eye": 3}


@register
class UpcastChecker(Checker):
    rule = "NES008"
    pragma = "upcast"
    description = (
        "float64 creation/upcast (astype, np.float64, float64 dtype args, "
        "unguarded np.sqrt, similarity_from_distances) inside the int8 "
        "quantized scoring engine"
    )

    def check(self, ctx):
        if not in_module(ctx.path, SCOPE):
            return
        np_names = numpy_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_call(ctx, node, np_names)

    def _check_call(self, ctx, node: ast.Call, np_names: set):
        name = dotted_name(node.func)
        parts = name.split(".") if name else []

        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and node.args
            and self._is_float64(node.args[0], np_names)
        ):
            yield self.finding(
                ctx,
                node,
                ".astype to float64 upcasts a quantized buffer — the "
                "engine's contract is int8/int32 plus one float32 rescale",
                hint="use np.float32 (or keep the integer dtype)",
            )
            return

        if len(parts) == 2 and parts[0] in np_names:
            fn = parts[1]
            if fn == "float64":
                yield self.finding(
                    ctx,
                    node,
                    "np.float64(...) constructs a float64 value inside the "
                    "quantized scoring engine",
                    hint="use np.float32",
                )
                return
            if fn == "sqrt" and node.args and not self._is_f32_guarded(
                node.args[0], np_names
            ):
                yield self.finding(
                    ctx,
                    node,
                    "np.sqrt over a non-float32 operand silently "
                    "materializes float64 (int32 distance buffers upcast "
                    "here)",
                    hint="sqrt the .astype(np.float32) view of the buffer",
                )
                return
            dtype_args = [kw.value for kw in node.keywords if kw.arg == "dtype"]
            if fn in _ALLOCATORS and len(node.args) > _ALLOCATORS[fn]:
                dtype_args.append(node.args[_ALLOCATORS[fn]])
            for arg in dtype_args:
                if self._is_float64(arg, np_names):
                    yield self.finding(
                        ctx,
                        node,
                        f"np.{fn}(...) with a float64 dtype inside the "
                        "quantized scoring engine — even explicit float64 "
                        "needs a justification here",
                        hint="use float32, or pragma a justified boundary "
                        "value with allow-upcast(reason)",
                    )
                    return
        elif dtype_args := [
            kw.value for kw in node.keywords if kw.arg == "dtype"
        ]:
            for arg in dtype_args:
                if self._is_float64(arg, np_names):
                    yield self.finding(
                        ctx,
                        node,
                        "call with a float64 dtype inside the quantized "
                        "scoring engine",
                        hint="use float32, or pragma a justified boundary "
                        "value with allow-upcast(reason)",
                    )
                    return

        if parts and parts[-1] == "similarity_from_distances":
            yield self.finding(
                ctx,
                node,
                "similarity_from_distances is the fp64 reference path — the "
                "quantized engine builds similarities natively in float32",
                hint="use int8_similarity",
            )

    @staticmethod
    def _is_float64(node: ast.AST, np_names: set) -> bool:
        if isinstance(node, ast.Constant) and node.value == "float64":
            return True
        if isinstance(node, ast.Name) and node.id == "float":
            return True
        name = dotted_name(node)
        if name is None:
            return False
        parts = name.split(".")
        return len(parts) == 2 and parts[0] in np_names and parts[1] == "float64"

    @staticmethod
    def _is_f32_guarded(node: ast.AST, np_names: set) -> bool:
        """Is the expression visibly float32 (astype/np.float32 at the top)?"""
        if not isinstance(node, ast.Call):
            return False
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and node.args
        ):
            target = dotted_name(node.args[0])
            if target:
                parts = target.split(".")
                return (
                    len(parts) == 2
                    and parts[0] in np_names
                    and parts[1] == "float32"
                )
            return False
        name = dotted_name(node.func)
        if name:
            parts = name.split(".")
            return (
                len(parts) == 2
                and parts[0] in np_names
                and parts[1] == "float32"
            )
        return False
