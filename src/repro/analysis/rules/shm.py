"""NES004 — shared-memory segments must be released on every exit path.

A POSIX shared-memory segment (``multiprocessing.shared_memory
.SharedMemory`` or our :class:`~repro.parallel.store.SharedFeatureStore`)
outlives the process that forgets it: a selection round that raises
between ``SharedMemory(create=True)`` and ``unlink()`` leaks the segment
in ``/dev/shm`` until reboot.  This dataflow check requires every
creation bound in a function scope to be released on *all* exits — via a
``with`` block or a ``close()`` in a ``finally`` suite.

Ownership-transfer shapes are exempt: binding to ``self.<attr>``
(lifecycle belongs to the object's own close/unlink methods), returning
the object (the caller owns it), or creating it directly inside a
``return`` expression.
"""

from __future__ import annotations

import ast

from repro.analysis.registry import Checker, register
from repro.analysis.rules._util import dotted_name

_CREATOR_TAILS = {"SharedMemory", "SharedFeatureStore", "SharedFeatureStore.attach"}


def _own_nodes(func: ast.AST):
    """Nodes belonging to ``func`` itself, excluding nested function bodies
    (those scopes are visited on their own and must not be double-reported)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_creation(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    if name is None:
        return False
    return any(
        name == tail or name.endswith("." + tail) for tail in _CREATOR_TAILS
    )


def _name_released_in_finally(func: ast.AST, name: str) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        for inner in node.finalbody:
            for sub in ast.walk(inner):
                if (
                    isinstance(sub, ast.Attribute)
                    and sub.attr in ("close", "unlink")
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == name
                ):
                    return True
    return False


def _name_is_returned(func: ast.AST, name: str) -> bool:
    """True when the object itself is handed to the caller.

    Only a *direct* return of the name (possibly inside a tuple/list)
    transfers ownership; ``return store.vectors.sum()`` merely reads
    through the object and still leaks its segment.
    """
    for node in ast.walk(func):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        candidates = (
            node.value.elts
            if isinstance(node.value, (ast.Tuple, ast.List))
            else [node.value]
        )
        for sub in candidates:
            if isinstance(sub, ast.Name) and sub.id == name:
                return True
    return False


def _with_context_creations(func: ast.AST) -> set[ast.Call]:
    managed: set[ast.Call] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for sub in ast.walk(item.context_expr):
                    if isinstance(sub, ast.Call):
                        managed.add(sub)
    return managed


def _returned_creations(func: ast.AST) -> set[ast.Call]:
    returned: set[ast.Call] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Call):
                    returned.add(sub)
    return returned


@register
class ShmLifecycleChecker(Checker):
    rule = "NES004"
    pragma = "shm-lifecycle"
    description = (
        "SharedMemory/SharedFeatureStore creation not paired with "
        "close()/unlink() on all exit paths (with block or try/finally)"
    )

    def check(self, ctx):
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            managed = _with_context_creations(func)
            returned = _returned_creations(func)
            own = list(_own_nodes(func))
            for node in own:
                if not isinstance(node, ast.Assign):
                    continue
                if not _is_creation(node.value) or node.value in managed:
                    continue
                # self.<attr> = creation: lifecycle owned by the object.
                if all(isinstance(t, ast.Attribute) for t in node.targets):
                    continue
                targets = [t for t in node.targets if isinstance(t, ast.Name)]
                if not targets:
                    continue
                name = targets[0].id
                if _name_released_in_finally(func, name):
                    continue
                if _name_is_returned(func, name):
                    continue  # ownership transferred to the caller
                yield self.finding(
                    ctx,
                    node,
                    f"shared-memory object {name!r} may leak its segment: "
                    "no close()/unlink() on all exit paths",
                    hint="wrap in `with`, or release in a try/finally "
                    "(close() in the finally suite)",
                )
            # Creations used as bare expressions (not bound, not returned,
            # not context-managed) always leak.
            for node in own:
                if (
                    isinstance(node, ast.Expr)
                    and _is_creation(node.value)
                    and node.value not in managed
                    and node.value not in returned
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "shared-memory segment created and immediately "
                        "dropped: nothing can ever release it",
                        hint="bind it and release in try/finally, or use "
                        "a with block",
                    )
