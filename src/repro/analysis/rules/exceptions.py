"""NES003 — broad exception handlers that swallow errors silently.

``except Exception`` around a fallback is legitimate exactly when the
fallback is the *designed* behaviour for a whole class of platform
failures (no POSIX shm, no process pool) — and those sites must say so
with ``# lint: allow-broad-except(reason)``.  Everywhere else a broad
handler that neither re-raises nor logs turns real bugs (a typo'd
attribute, a shape mismatch) into silently-wrong results — in a
reproduction whose value is numerical trustworthiness, that is an
invariant violation, not a style nit.
"""

from __future__ import annotations

import ast

from repro.analysis.registry import Checker, register
from repro.analysis.rules._util import dotted_name

_BROAD = {"Exception", "BaseException"}
_LOG_ATTRS = {
    "debug",
    "info",
    "warning",
    "warn",
    "error",
    "exception",
    "critical",
    "log",
    "print_exc",
}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare except:
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    for t in types:
        name = dotted_name(t)
        if name is not None and name.split(".")[-1] in _BROAD:
            return True
    return False


def _handles_error(handler: ast.ExceptHandler) -> bool:
    """Does the handler body re-raise or log?"""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _LOG_ATTRS:
                return True
            if isinstance(func, ast.Name) and func.id in ("warn",):
                return True
    return False


@register
class BroadExceptChecker(Checker):
    rule = "NES003"
    pragma = "broad-except"
    description = (
        "bare/broad `except Exception` that neither re-raises, logs, nor "
        "carries a `# lint: allow-broad-except(reason)` pragma"
    )

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node) or _handles_error(node):
                continue
            what = "bare except:" if node.type is None else "except Exception"
            yield self.finding(
                ctx,
                node,
                f"{what} swallows errors without re-raising or logging",
                hint="narrow the exception type, log-and-reraise, or add "
                "# lint: allow-broad-except(reason) if the fallback is "
                "designed behaviour",
            )
