"""NES002 — implicit float64 creation in dtype-accounted hot paths.

``NeSSAConfig.similarity_precision`` flows into
``chunk_pairwise_bytes`` / the SmartSSD kernel byte model (PR 1/2): the
bytes the cost model charges are derived from a *declared* dtype.  An
allocation like ``np.zeros(n)`` in those modules silently materializes
float64, so the arrays the code actually touches no longer match what
the accounting claims — and a float64 intermediate entering an fp32
pipeline also changes rounding, which can flip selection order.  Every
allocation in the accounted modules must name its dtype.
"""

from __future__ import annotations

import ast

from repro.analysis.registry import Checker, register
from repro.analysis.rules._util import dotted_name, in_module, numpy_aliases

SCOPE = (
    "repro/selection/",
    "repro/parallel/",
    "repro/smartssd/kernel.py",
)

# allocator -> positional index where dtype may appear
_ALLOCATORS = {"zeros": 1, "empty": 1, "ones": 1, "full": 2, "eye": 3}


@register
class PrecisionChecker(Checker):
    rule = "NES002"
    pragma = "implicit-float64"
    description = (
        "numpy allocation without an explicit dtype (or np.array over bare "
        "float literals) in modules whose byte accounting assumes the "
        "configured similarity_precision"
    )

    def check(self, ctx):
        if not in_module(ctx.path, SCOPE):
            return
        np_names = numpy_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) != 2 or parts[0] not in np_names:
                continue
            fn = parts[1]
            has_dtype_kw = any(kw.arg == "dtype" for kw in node.keywords)
            if fn in _ALLOCATORS:
                if has_dtype_kw or len(node.args) > _ALLOCATORS[fn]:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"np.{fn}(...) without dtype= materializes float64 here, "
                    "which the similarity_precision byte accounting does not "
                    "model",
                    hint="pass dtype= matching the configured precision "
                    "(or np.float64 if 8-byte entries are intended and "
                    "accounted)",
                )
            elif fn == "array" and not has_dtype_kw and node.args:
                if self._has_bare_float_literal(node.args[0]):
                    yield self.finding(
                        ctx,
                        node,
                        "np.array over bare float literals defaults to "
                        "float64 — the accounted dtype must be explicit",
                        hint="pass dtype= matching the configured precision",
                    )

    @staticmethod
    def _has_bare_float_literal(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Tuple)):
            return any(
                PrecisionChecker._has_bare_float_literal(e) for e in node.elts
            )
        return isinstance(node, ast.Constant) and isinstance(node.value, float)
