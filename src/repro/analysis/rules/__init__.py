"""Rule modules; importing this package registers every checker.

| rule   | pragma                 | invariant |
|--------|------------------------|-----------|
| NES001 | allow-determinism      | no global-state randomness in selection/parallel/nn |
| NES002 | allow-implicit-float64 | allocations in dtype-accounted modules name their dtype |
| NES003 | allow-broad-except     | broad handlers re-raise, log, or justify themselves |
| NES004 | allow-shm-lifecycle    | shm segments released on all exit paths |
| NES005 | allow-shape-contract   | public nn forwards carry composing shape contracts |
| NES006 | allow-span-with        | obs spans are with-managed at the call site |
| NES007 | allow-pool-lease       | buffer-pool leases released on all exit paths |
| NES008 | allow-upcast           | no float64 creation/upcast inside selection/qscore |
| NES009 | allow-shared-state     | no unlocked cross-thread attribute writes (project) |
| NES010 | allow-f64-escape       | no float64 flow into qscore/craig hot paths (project) |
| NES011 | allow-dynamic-metric   | metric names are declared dotted literals (METRIC_TABLE) |
| NES012 | allow-shape            | no provable shape error in selection/nn/parallel (project) |
| NES013 | allow-shape-conformance| forward bodies implement their @shape_contract (project) |
| NES014 | allow-dtype-drift      | no inferred float64 past declared precision into sinks (project) |

(NES000 is the engine's parse-failure pseudo-rule; it has no pragma and
cannot be baselined.  NES009/NES010 are whole-program rules driven by
:mod:`repro.analysis.project`; NES012–NES014 ride the abstract
interpreter in :mod:`repro.analysis.absint`.)
"""

from repro.analysis.rules import (  # noqa: F401 - imports register checkers
    absint_rules,
    determinism,
    escape,
    exceptions,
    metricnames,
    pool,
    precision,
    races,
    shape,
    shm,
    spans,
    upcast,
)
