"""NES011 — metric names are declared dotted-namespace string literals.

The Prometheus exporter derives its ``# HELP`` / ``# TYPE`` lines from
:data:`repro.obs.export.METRIC_TABLE`, the diff engine's metric
carve-outs are audited against it, and the report's derived pipeline
lines key on exact names — all of which breaks silently if a call site
invents a name at runtime (``f"qscore.{mode}_hits"``) or records one
the table never declared.  This check requires the first argument of
every ``*.counter(...)`` / ``*.gauge(...)`` / ``*.timer(...)`` call to
be a dotted-namespace string *literal* present in the table, so the
exported series set is knowable without running the code.

Dynamic names that are genuinely needed (a test fixture sweeping
synthetic series, say) take the escape hatch::

    reg.counter(name)  # lint: allow-dynamic-metric(fixture sweeps synthetic series)

The table itself lives outside :mod:`repro.analysis`, so the lint
cache's engine signature hashes ``repro/obs/export.py`` too — editing
the table invalidates cached verdicts exactly like editing a rule.
"""

from __future__ import annotations

import ast

from repro.analysis.registry import Checker, register

_METRIC_METHODS = ("counter", "gauge", "timer")


def _metric_table() -> dict:
    # Imported lazily: the analysis package must stay importable (and
    # its per-file workers cheap) without pulling the obs subsystem in
    # until a file actually records metrics.
    from repro.obs.export import METRIC_TABLE

    return METRIC_TABLE


@register
class MetricNameChecker(Checker):
    rule = "NES011"
    pragma = "dynamic-metric"
    description = (
        "metric names are dotted string literals declared in "
        "repro.obs.export.METRIC_TABLE"
    )

    def check(self, ctx):
        table = None
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in _METRIC_METHODS:
                continue
            if not node.args:
                continue
            arg = node.args[0]
            if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
                yield self.finding(
                    ctx,
                    node,
                    f".{func.attr}(...) metric name is not a string literal: "
                    "runtime-built names never reach METRIC_TABLE, so the "
                    "exporter emits them untyped and the diff carve-outs "
                    "cannot be audited",
                    hint="pass a dotted literal declared in "
                    "repro.obs.export.METRIC_TABLE",
                )
                continue
            name = arg.value
            if "." not in name:
                yield self.finding(
                    ctx,
                    node,
                    f"metric name {name!r} is not dotted-namespace "
                    "(subsystem.metric)",
                    hint="name it <subsystem>.<metric> and declare it in "
                    "repro.obs.export.METRIC_TABLE",
                )
                continue
            if table is None:
                table = _metric_table()
            if name not in table:
                yield self.finding(
                    ctx,
                    node,
                    f"metric name {name!r} is not declared in "
                    "repro.obs.export.METRIC_TABLE",
                    hint="add a (type, help) entry to METRIC_TABLE so the "
                    "Prometheus exporter can type it",
                )
