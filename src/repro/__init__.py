"""NeSSA reproduction: near-storage data selection for accelerated ML training.

This package reimplements, in pure Python + numpy, the complete system from
"NeSSA: Near-Storage Data Selection for Accelerated Machine Learning
Training" (Prakriya et al., HotStorage '23):

- ``repro.nn`` — a from-scratch neural-network training substrate
  (conv/batchnorm/linear layers, SGD with Nesterov momentum, LR schedules,
  int8 quantization).
- ``repro.data`` — synthetic image-classification datasets mirroring the six
  datasets the paper evaluates, plus the paper-scale metadata registry used
  for storage modelling.
- ``repro.selection`` — coreset selection: facility-location submodular
  maximization (lazy greedy and stochastic greedy), the CRAIG baseline, the
  greedy k-centers baseline, and the per-chunk/partitioned variants.
- ``repro.core`` — the NeSSA contribution: the selector with quantized-weight
  feedback, subset biasing, and dataset partitioning, plus trainers and the
  dynamic subset-size schedule.
- ``repro.parallel`` — the multi-core selection engine: shared-memory
  feature store, deterministic (class x chunk) work-unit scheduler,
  persistent process-pool executor, and the proxy-reuse cache.
- ``repro.smartssd`` — a discrete-event simulator of the Samsung SmartSSD
  (NAND flash, KU15P FPGA resource model, P2P and host PCIe links).
- ``repro.perf`` — GPU throughput catalogue and epoch-time decomposition used
  to regenerate the paper's timing figures.
- ``repro.pipeline`` — the end-to-end simulated SmartSSD+GPU training system.
"""

from repro.core.config import NeSSAConfig, TrainRecipe
from repro.core.selector import NeSSASelector
from repro.core.trainer import FullTrainer, NeSSATrainer, SubsetTrainer

__version__ = "1.0.0"

__all__ = [
    "NeSSAConfig",
    "TrainRecipe",
    "NeSSASelector",
    "NeSSATrainer",
    "FullTrainer",
    "SubsetTrainer",
    "__version__",
]
