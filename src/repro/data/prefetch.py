"""Double-buffered batch prefetching off the training thread.

``PrefetchingDataLoader`` moves the per-batch gather + augmentation work
of :class:`repro.data.loader.DataLoader` onto a single background worker
thread, which fills a bounded queue of up to ``depth`` ready batches
while the trainer consumes the current one — the NeSSA host-side analog
of hiding storage latency behind compute.

Determinism contract
--------------------
The worker precomputes the epoch's index order with the *same*
``_epoch_order`` (``seed + epoch`` RNG) the serial loader uses, gathers
batches in that order, and applies the transform in batch order on the
one worker thread.  Stateful transforms (``Compose`` reseeds itself per
call) therefore see exactly the serial call sequence, so the emitted
batch stream is bit-identical to the serial loader for any ``depth``
(``tests/data/test_prefetch.py`` asserts this for depths 1/2/8).

Buffer discipline
-----------------
``x``/``y`` are gathered into :class:`repro.nn.scratch.BufferPool`
leases, so steady-state epochs perform no per-batch batch-buffer
allocations.  A yielded batch's buffers stay valid until the consumer
asks for the *next* batch — exactly the lifetime the training loop
needs, and why ``ids`` (which the trainer retains across batches) are
always freshly allocated.  Leases travel with their batch through the
queue and are recycled by the consumer, released by the worker when a
hand-off fails, and drained in the iterator's ``finally`` — a leaked
lease is lint-visible (NES007).
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Iterator

import numpy as np

from repro.data.loader import Batch, DataLoader
from repro.nn.scratch import BufferPool
from repro.obs import metrics

__all__ = ["PrefetchingDataLoader"]

_SENTINEL = object()


class _WorkerError:
    """Exception captured on the worker thread, re-raised by the consumer."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


class PrefetchingDataLoader(DataLoader):
    """Drop-in ``DataLoader`` that prepares batches ahead of the consumer.

    Parameters
    ----------
    depth : bound on ready-but-unconsumed batches (>= 1).  ``depth=1`` is
        classic double buffering: one batch in flight while one trains.
    pool : buffer pool for the gathered ``x``/``y`` pair; defaults to a
        private pool sized so steady state never drops a free buffer.
    """

    def __init__(
        self,
        dataset,
        batch_size: int = 128,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: int = 0,
        transform=None,
        depth: int = 2,
        pool: BufferPool | None = None,
    ):
        super().__init__(dataset, batch_size, shuffle, drop_last, seed, transform)
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = depth
        # depth queued + 1 being consumed + 1 being filled
        self.pool = pool if pool is not None else BufferPool(max_free_per_key=depth + 2)
        self.last_epoch_stats: dict = {}

    def __iter__(self) -> Iterator[Batch]:
        epoch = self._epoch
        order = self._epoch_order(epoch)
        out: queue.Queue = queue.Queue(maxsize=self.depth)
        stop = threading.Event()
        stats = {"batches": 0, "queue_wait_s": 0.0, "producer_wait_s": 0.0}

        worker = threading.Thread(
            target=self._produce,
            args=(order, out, stop, stats),
            name="prefetch-worker",
            daemon=True,
        )
        worker.start()
        held = None  # leases backing the batch the consumer currently holds
        completed = False
        try:
            while True:
                t0 = time.perf_counter()
                item = out.get()
                stats["queue_wait_s"] += time.perf_counter() - t0
                if held is not None:
                    # The consumer came back for the next batch, so the
                    # previous one's buffers are dead by contract: recycle.
                    for lease in held:
                        lease.release()
                    held = None
                if item is _SENTINEL:
                    break
                if isinstance(item, _WorkerError):
                    raise item.exc
                batch, held = item
                stats["batches"] += 1
                yield batch
            completed = True
        finally:
            stop.set()
            while worker.is_alive():
                self._drain(out)
                worker.join(timeout=0.01)
            self._drain(out)
            if held is not None:
                for lease in held:
                    lease.release()
            self.last_epoch_stats = dict(stats, epoch=epoch, pool=self.pool.stats)
            reg = metrics()
            reg.counter("prefetch.batches").inc(stats["batches"])
            reg.timer("prefetch.queue_wait").observe(max(0.0, stats["queue_wait_s"]))
            if completed:
                self._epoch += 1

    # -- worker side ---------------------------------------------------------

    def _produce(self, order, out, stop, stats) -> None:
        try:
            n = len(order)
            weights = getattr(self.dataset, "weights", None)
            for start in range(0, n, self.batch_size):
                if stop.is_set():
                    return
                pos = order[start : start + self.batch_size]
                if self.drop_last and len(pos) < self.batch_size:
                    break
                item = self._gather(pos, weights)
                if not self._put(out, stop, item, stats):
                    for lease in item[1]:
                        lease.release()
                    return
            self._put(out, stop, _SENTINEL, stats)
        except BaseException as exc:  # lint: allow-broad-except(worker thread cannot raise to the consumer; the exception is queued and re-raised on the training thread)
            self._put(out, stop, _WorkerError(exc), stats)

    def _gather(self, pos: np.ndarray, weights):
        """Assemble one batch into pooled buffers (worker thread)."""
        x_src = self.dataset.x
        x_lease = self.pool.lease((len(pos),) + x_src.shape[1:], x_src.dtype)
        y_lease = self.pool.lease((len(pos),), self.dataset.y.dtype)
        handed_off = False
        try:
            np.take(x_src, pos, axis=0, out=x_lease.array)
            np.take(self.dataset.y, pos, axis=0, out=y_lease.array)
            x = x_lease.array
            if self.transform is not None:
                t = self.transform(x)
                if t is not x:
                    if t.shape == x.shape and t.dtype == x.dtype:
                        np.copyto(x, t)
                    else:
                        # transform changed layout; serve it unpooled
                        x = t
            w = weights[pos] if weights is not None else None
            # ids are retained by the trainer across batches -> fresh array
            batch = Batch(x, y_lease.array, self.dataset.ids[pos], w)
            handed_off = True
            return batch, (x_lease, y_lease)
        finally:
            if not handed_off:
                x_lease.release()
                y_lease.release()

    @staticmethod
    def _put(out, stop, item, stats) -> bool:
        """Blocking put that aborts when the consumer signalled stop."""
        t0 = time.perf_counter()
        while not stop.is_set():
            try:
                out.put(item, timeout=0.05)
            except queue.Full:
                continue
            stats["producer_wait_s"] += time.perf_counter() - t0
            return True
        return False

    @staticmethod
    def _drain(out) -> None:
        while True:
            try:
                item = out.get_nowait()
            except queue.Empty:
                return
            if isinstance(item, tuple):
                for lease in item[1]:
                    lease.release()
