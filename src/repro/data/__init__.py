"""Datasets: synthetic image-classification generators + paper-scale registry.

The evaluation datasets of the paper (Table 1) cannot ship with this repo,
so :mod:`repro.data.synthetic` generates class-structured synthetic image
data whose redundancy profile exercises the same selection behaviour, and
:mod:`repro.data.registry` carries the true paper-scale metadata (class
counts, train sizes, bytes per image) that the storage and timing models
consume.
"""

from repro.data.augment import Compose, GaussianNoise, RandomCrop, RandomHorizontalFlip
from repro.data.dataset import Dataset, Subset, stratified_split
from repro.data.loader import DataLoader
from repro.data.prefetch import PrefetchingDataLoader
from repro.data.storage_format import DatasetLayout, load_dataset_bin, save_dataset_bin
from repro.data.registry import (
    DATASETS,
    PaperDataset,
    get_dataset_info,
    scaled_experiment_config,
)
from repro.data.synthetic import SyntheticConfig, SyntheticImageDataset, make_train_test

__all__ = [
    "Compose",
    "RandomCrop",
    "RandomHorizontalFlip",
    "GaussianNoise",
    "Dataset",
    "Subset",
    "stratified_split",
    "DataLoader",
    "PrefetchingDataLoader",
    "SyntheticConfig",
    "SyntheticImageDataset",
    "make_train_test",
    "PaperDataset",
    "DATASETS",
    "get_dataset_info",
    "scaled_experiment_config",
    "DatasetLayout",
    "save_dataset_bin",
    "load_dataset_bin",
]
