"""In-memory dataset containers and split utilities."""

from __future__ import annotations

import numpy as np

__all__ = ["Dataset", "Subset", "stratified_split"]


class Dataset:
    """An in-memory labelled image dataset.

    Attributes
    ----------
    x : ``(N, C, H, W)`` float32 images.
    y : ``(N,)`` int64 labels.
    ids : ``(N,)`` int64 stable global sample ids — selection bookkeeping
        (loss histories, drop sets) is keyed on these, not on positions,
        so subsetting never invalidates state.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray, ids: np.ndarray | None = None):
        x = np.asarray(x, dtype=np.float32)
        y = np.asarray(y, dtype=np.int64)
        if x.ndim != 4:
            raise ValueError(f"x must be (N, C, H, W), got shape {x.shape}")
        if y.ndim != 1 or y.shape[0] != x.shape[0]:
            raise ValueError("y must be (N,) aligned with x")
        self.x = x
        self.y = y
        if ids is None:
            ids = np.arange(x.shape[0], dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape != y.shape:
                raise ValueError("ids must be (N,) aligned with x")
            if len(np.unique(ids)) != len(ids):
                raise ValueError("ids must be unique")
        self.ids = ids

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def num_classes(self) -> int:
        return int(self.y.max()) + 1 if len(self) else 0

    @property
    def image_shape(self) -> tuple:
        return self.x.shape[1:]

    def class_indices(self, label: int) -> np.ndarray:
        """Positions (not ids) of all samples with the given label."""
        return np.flatnonzero(self.y == label)

    def subset(self, positions: np.ndarray) -> "Subset":
        """View of the samples at the given positions."""
        return Subset(self, np.asarray(positions, dtype=np.int64))

    def subset_by_ids(self, ids: np.ndarray) -> "Subset":
        """View of the samples with the given global ids."""
        id_to_pos = {int(i): pos for pos, i in enumerate(self.ids)}
        try:
            positions = np.array([id_to_pos[int(i)] for i in ids], dtype=np.int64)
        except KeyError as exc:
            raise KeyError(f"id {exc.args[0]} not in dataset") from None
        return Subset(self, positions)

    def __repr__(self) -> str:
        return f"Dataset(n={len(self)}, classes={self.num_classes}, shape={self.image_shape})"


class Subset(Dataset):
    """A dataset that shares storage with a parent but exposes a subset.

    ``weights`` carries the optional per-sample CRAIG weights (cluster
    sizes); ``None`` means uniform.
    """

    def __init__(self, parent: Dataset, positions: np.ndarray, weights: np.ndarray | None = None):
        positions = np.asarray(positions, dtype=np.int64)
        if len(positions) and (positions.min() < 0 or positions.max() >= len(parent)):
            raise IndexError("subset positions out of range")
        super().__init__(parent.x[positions], parent.y[positions], parent.ids[positions])
        self.parent = parent
        self.positions = positions
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (len(positions),):
                raise ValueError("weights must align with positions")
            if (weights < 0).any():
                raise ValueError("weights must be non-negative")
        self.weights = weights

    def __repr__(self) -> str:
        frac = 100.0 * len(self) / max(1, len(self.parent))
        return f"Subset(n={len(self)}, {frac:.1f}% of parent)"


def stratified_split(
    dataset: Dataset, test_fraction: float, seed: int = 0
) -> tuple[Subset, Subset]:
    """Split into (train, test) preserving per-class proportions."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    train_pos, test_pos = [], []
    for label in range(dataset.num_classes):
        pos = dataset.class_indices(label)
        pos = rng.permutation(pos)
        n_test = max(1, int(round(len(pos) * test_fraction)))
        test_pos.append(pos[:n_test])
        train_pos.append(pos[n_test:])
    train = dataset.subset(np.sort(np.concatenate(train_pos)))
    test = dataset.subset(np.sort(np.concatenate(test_pos)))
    return train, test
