"""Class-structured synthetic image data with controllable redundancy.

The selection results in the paper hinge on a structural property of real
vision datasets: most examples are *redundant* (dense clusters of
near-duplicates the model learns quickly) while a minority are *rare or
hard* (small clusters, samples near class boundaries) and carry most of the
gradient signal late in training.  Coreset selection wins because a few
medoids plus weights summarize the dense clusters.

The generator reproduces that structure explicitly:

- each class owns ``clusters_per_class`` prototype images (smooth random
  fields, so convolutions have spatial structure to exploit);
- cluster populations follow a Zipf-like profile — a few big redundant
  clusters, a tail of small rare ones;
- samples are prototypes plus within-cluster noise, and a ``hard_fraction``
  of samples is additionally pulled toward another class's prototype,
  placing them near the decision boundary.

Each sample records its ground-truth ``cluster_id`` and ``difficulty`` so
tests can assert selection behaviour (e.g. "coreset covers every cluster",
"biasing drops easy samples first") against the generator's own truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import Dataset, stratified_split

__all__ = ["SyntheticConfig", "SyntheticImageDataset", "make_train_test"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic generator.

    The defaults produce a small CIFAR-like problem that a narrow ResNet
    separates to ~90% accuracy in a few epochs on a laptop CPU.
    """

    num_classes: int = 10
    num_samples: int = 2000
    image_shape: tuple = (3, 8, 8)
    clusters_per_class: int = 4
    zipf_exponent: float = 1.0
    within_cluster_noise: float = 0.35
    hard_fraction: float = 0.15
    hard_pull: float = 0.45
    prototype_smoothness: int = 2
    seed: int = 0

    def __post_init__(self):
        if self.num_classes < 2:
            raise ValueError("need at least 2 classes")
        if self.num_samples < self.num_classes * self.clusters_per_class:
            raise ValueError("too few samples for the requested cluster structure")
        if not 0.0 <= self.hard_fraction < 1.0:
            raise ValueError("hard_fraction must be in [0, 1)")
        if len(self.image_shape) != 3:
            raise ValueError("image_shape must be (C, H, W)")


class SyntheticImageDataset(Dataset):
    """Synthetic dataset with per-sample generation metadata.

    Extra attributes over :class:`~repro.data.dataset.Dataset`:

    - ``cluster_ids``: global id of the cluster each sample was drawn from;
    - ``difficulty``: 0.0 for pure cluster samples, the pull strength for
      boundary-pulled ("hard") samples;
    - ``config``: the generator configuration.
    """

    def __init__(self, config: SyntheticConfig):
        rng = np.random.default_rng(config.seed)
        c, h, w = config.image_shape

        prototypes = _make_prototypes(config, rng)

        # Zipf-like cluster populations within each class.
        per_class = _split_sizes(config.num_samples, config.num_classes)
        xs, ys, cluster_ids, difficulty = [], [], [], []
        cluster_counter = 0
        for label in range(config.num_classes):
            weights = 1.0 / np.arange(1, config.clusters_per_class + 1) ** config.zipf_exponent
            weights /= weights.sum()
            counts = _allocate(per_class[label], weights, rng)
            for k in range(config.clusters_per_class):
                proto = prototypes[label, k]
                n = counts[k]
                noise = rng.normal(0.0, config.within_cluster_noise, size=(n, c, h, w))
                samples = proto[None] + noise
                diff = np.zeros(n)
                n_hard = int(round(n * config.hard_fraction))
                if n_hard:
                    hard_idx = rng.choice(n, size=n_hard, replace=False)
                    other_labels = rng.choice(
                        [l for l in range(config.num_classes) if l != label], size=n_hard
                    )
                    other_k = rng.integers(0, config.clusters_per_class, size=n_hard)
                    pull = config.hard_pull * rng.uniform(0.6, 1.0, size=n_hard)
                    for i, (hi, ol, ok, p) in enumerate(
                        zip(hard_idx, other_labels, other_k, pull)
                    ):
                        samples[hi] = (1 - p) * samples[hi] + p * prototypes[ol, ok]
                        diff[hi] = p
                xs.append(samples)
                ys.append(np.full(n, label))
                cluster_ids.append(np.full(n, cluster_counter))
                difficulty.append(diff)
                cluster_counter += 1

        x = np.concatenate(xs).astype(np.float32)
        y = np.concatenate(ys)
        order = rng.permutation(len(y))
        super().__init__(x[order], y[order])
        self.cluster_ids = np.concatenate(cluster_ids)[order]
        self.difficulty = np.concatenate(difficulty)[order]
        self.config = config
        self.prototypes = prototypes

    @property
    def num_clusters(self) -> int:
        return self.config.num_classes * self.config.clusters_per_class


def _make_prototypes(config: SyntheticConfig, rng: np.random.Generator) -> np.ndarray:
    """Smooth random-field prototype images, one per (class, cluster).

    Low-resolution noise upsampled by ``prototype_smoothness`` gives images
    with local spatial correlation, so convolutional features are the right
    tool — plain white noise would make convs pointless.
    """
    c, h, w = config.image_shape
    s = max(1, config.prototype_smoothness)
    lh, lw = max(1, h // s), max(1, w // s)
    low = rng.normal(0.0, 1.0, size=(config.num_classes, config.clusters_per_class, c, lh, lw))
    up = np.repeat(np.repeat(low, s, axis=3), s, axis=4)[:, :, :, :h, :w]
    if up.shape[3] < h or up.shape[4] < w:
        pad_h, pad_w = h - up.shape[3], w - up.shape[4]
        up = np.pad(up, ((0, 0), (0, 0), (0, 0), (0, pad_h), (0, pad_w)), mode="edge")
    # Separate class means so the task is learnable but not trivial.
    class_shift = rng.normal(0.0, 1.2, size=(config.num_classes, 1, c, 1, 1))
    return (up + class_shift).astype(np.float32)


def _split_sizes(total: int, parts: int) -> list[int]:
    """Split ``total`` into ``parts`` near-equal integers."""
    base = total // parts
    sizes = [base] * parts
    for i in range(total - base * parts):
        sizes[i] += 1
    return sizes


def _allocate(total: int, weights: np.ndarray, rng: np.random.Generator) -> list[int]:
    """Allocate ``total`` samples over clusters ~ ``weights``, min 1 each."""
    counts = np.maximum(1, np.floor(weights * total).astype(int))
    while counts.sum() > total:
        counts[counts.argmax()] -= 1
    while counts.sum() < total:
        counts[rng.integers(0, len(counts))] += 1
    return counts.tolist()


def make_train_test(
    config: SyntheticConfig, test_fraction: float = 0.2
) -> tuple[Dataset, Dataset]:
    """Generate a dataset and return a stratified (train, test) split.

    The split reuses ``config.seed`` so experiments are fully reproducible
    from the config alone.
    """
    full = SyntheticImageDataset(config)
    train, test = stratified_split(full, test_fraction, seed=config.seed)
    return train, test
