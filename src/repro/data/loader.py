"""Mini-batch iteration over datasets.

A deliberately small DataLoader: seeded shuffling, optional per-sample
weights (for CRAIG's weighted subsets), and batch indices exposed so the
trainer can attribute per-sample losses back to global sample ids.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.dataset import Dataset

__all__ = ["DataLoader", "Batch"]


class Batch:
    """One mini-batch: images, labels, global ids and optional weights."""

    __slots__ = ("x", "y", "ids", "weights")

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        ids: np.ndarray,
        weights: np.ndarray | None = None,
    ):
        self.x = x
        self.y = y
        self.ids = ids
        self.weights = weights

    def __len__(self) -> int:
        return self.x.shape[0]


class DataLoader:
    """Iterate a dataset in mini-batches.

    Shuffling is driven by an internal generator reseeded per epoch from
    ``seed + epoch``, so runs are reproducible yet epochs differ.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 128,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: int = 0,
        transform=None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.seed = seed
        self.transform = transform
        self._epoch = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def _epoch_order(self, epoch: int) -> np.ndarray:
        """Sample visitation order for ``epoch``.

        This is the single source of truth for batch composition — the
        prefetching loader calls it too, which is what makes its batch
        stream bit-identical to the serial one at any queue depth.
        """
        n = len(self.dataset)
        if self.shuffle:
            return np.random.default_rng(self.seed + epoch).permutation(n)
        return np.arange(n)

    def __iter__(self) -> Iterator[Batch]:
        n = len(self.dataset)
        order = self._epoch_order(self._epoch)

        weights = getattr(self.dataset, "weights", None)
        for start in range(0, n, self.batch_size):
            pos = order[start : start + self.batch_size]
            if self.drop_last and len(pos) < self.batch_size:
                break
            w = weights[pos] if weights is not None else None
            x = self.dataset.x[pos]
            if self.transform is not None:
                x = self.transform(x)
            yield Batch(
                x,
                self.dataset.y[pos],
                self.dataset.ids[pos],
                w,
            )
        # An abandoned/partial iterator unwinds via GeneratorExit and never
        # reaches this line: only a fully consumed epoch advances the
        # shuffle seed, so peeking at a loader cannot perturb later epochs.
        self._epoch += 1

    @property
    def epochs_served(self) -> int:
        """How many epochs have been fully consumed (drives the shuffle seed)."""
        return self._epoch
