"""Paper-scale dataset metadata (Tables 1 and 2) and scaled experiment configs.

Two distinct uses:

1. **Storage/timing modelling** (Figures 2, 4, 6; the 3.47x/5.37x claims)
   needs the *true* paper-scale numbers — train-set sizes and on-disk bytes
   per image — because those figures are bandwidth/byte arithmetic.  The
   :data:`DATASETS` registry records them, together with the paper's
   reported accuracies so benchmark output can print paper-vs-measured.

2. **Accuracy experiments** (Tables 2, 3; Figure 5) run on laptop-scale
   synthetic stand-ins.  :func:`scaled_experiment_config` maps each paper
   dataset to a :class:`~repro.data.synthetic.SyntheticConfig` preserving
   the aspects that drive selection behaviour (class count ratios, relative
   dataset sizes, redundancy profile) at a tractable size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.synthetic import SyntheticConfig

__all__ = ["PaperDataset", "DATASETS", "get_dataset_info", "scaled_experiment_config"]


@dataclass(frozen=True)
class PaperDataset:
    """Metadata for one row of the paper's Table 1 (+ Table 2 results)."""

    name: str
    num_classes: int
    train_size: int
    image_shape: tuple  # (C, H, W) at paper scale
    bytes_per_image: int  # on-disk size the paper quotes / implies
    model: str  # network from Table 1
    paper_full_acc: float  # Table 2 "All Data" column
    paper_nessa_acc: float  # Table 2 "NeSSA" column
    paper_subset_pct: int  # Table 2 "Subset" column

    @property
    def total_bytes(self) -> int:
        """On-disk footprint of the full training set."""
        return self.train_size * self.bytes_per_image

    @property
    def subset_fraction(self) -> float:
        return self.paper_subset_pct / 100.0


# Table 1 + Table 2 of the paper.  bytes_per_image: the paper states
# 0.5 KB/image MNIST, 3 KB CIFAR-10/100 (Section 1), 0.003 MB CIFAR and
# 0.126 MB ImageNet-100 (Section 4.4); SVHN/CINIC-10 are CIFAR-geometry
# (32x32 -> ~3 KB) and TinyImageNet is 64x64 (~4x CIFAR bytes).
DATASETS: dict[str, PaperDataset] = {
    d.name: d
    for d in [
        PaperDataset("cifar10", 10, 50_000, (3, 32, 32), 3_000, "resnet20", 92.02, 90.17, 28),
        PaperDataset("svhn", 10, 73_000, (3, 32, 32), 3_000, "resnet18", 95.81, 95.18, 15),
        PaperDataset("cinic10", 10, 90_000, (3, 32, 32), 3_000, "resnet18", 81.49, 80.26, 30),
        PaperDataset("cifar100", 100, 50_000, (3, 32, 32), 3_000, "resnet18", 70.98, 69.23, 38),
        PaperDataset(
            "tinyimagenet", 200, 100_000, (3, 64, 64), 12_000, "resnet18", 63.40, 63.66, 34
        ),
        PaperDataset(
            "imagenet100", 100, 130_000, (3, 224, 224), 126_000, "resnet50", 84.60, 83.76, 28
        ),
    ]
}

# MNIST appears only in the Figure 2 data-movement profile, not in the
# accuracy evaluation; keep its byte metadata separately.
FIG2_DATASETS: dict[str, tuple[int, int]] = {
    # name -> (train size, bytes/image); the paper quotes 0.5 KB MNIST,
    # 3 KB CIFAR, 130 KB ImageNet-100 images in Section 1.
    "mnist": (60_000, 500),
    "cifar10": (50_000, 3_000),
    "cifar100": (50_000, 3_000),
    "imagenet100": (130_000, 130_000),
}


def get_dataset_info(name: str) -> PaperDataset:
    """Look up a paper dataset by name (raises ``KeyError`` with options)."""
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; options: {sorted(DATASETS)}") from None


def scaled_experiment_config(
    name: str,
    scale: float = 1.0,
    seed: int = 0,
) -> SyntheticConfig:
    """Laptop-scale synthetic stand-in for a paper dataset.

    ``scale`` multiplies the default sample budget (1.0 keeps every dataset
    trainable in tens of seconds with the narrow models used in tests; the
    examples pass larger scales for better-converged curves).

    The mapping preserves, per dataset: the class-count ordering (10-class
    CIFAR-10/SVHN/CINIC vs many-class CIFAR-100/TinyImageNet/ImageNet-100),
    the relative train-set sizes, and a redundancy profile that makes SVHN
    the most redundant (the paper selects its smallest subset, 15%, there)
    and CIFAR-100 the least (largest subset, 38%).
    """
    info = get_dataset_info(name)
    # Scaled class counts: keep 10-class datasets exact, compress the
    # many-class ones to stay trainable while preserving the ordering.
    classes = {"cifar10": 10, "svhn": 10, "cinic10": 10,
               "cifar100": 20, "tinyimagenet": 20, "imagenet100": 16}[name]
    # Relative sizes follow Table 1 (50k..130k) compressed to 1.5k..3.4k.
    samples = int(round(info.train_size / 50_000 * 1500 * scale))
    # Redundancy/difficulty: higher within-cluster noise and more (and more
    # strongly pulled) hard samples mean less redundancy and lower ceiling
    # accuracy.  Calibrated so full-data training at laptop scale lands
    # near each dataset's paper accuracy ordering: SVHN easiest/most
    # redundant (paper: 95.8%, 15% subset), TinyImageNet hardest (63.4%).
    # hard_pull stays below 0.5 for cifar10 so hard samples keep their
    # Bayes-optimal label (pull past the midpoint turns them into label
    # noise, which inverts the Goal-is-ceiling property of Table 3).
    profile = {
        "cifar10": (0.50, 0.25, 0.45),
        "svhn": (0.30, 0.14, 0.60),
        "cinic10": (0.65, 0.28, 0.70),
        "cifar100": (0.80, 0.30, 0.75),
        "tinyimagenet": (1.00, 0.35, 0.80),
        "imagenet100": (0.40, 0.15, 0.60),
    }[name]
    noise, hard, pull = profile
    return SyntheticConfig(
        num_classes=classes,
        num_samples=max(samples, classes * 16),
        image_shape=(3, 8, 8),
        clusters_per_class=4,
        within_cluster_noise=noise,
        hard_fraction=hard,
        hard_pull=pull,
        seed=seed,
    )
