"""Training-time data augmentation.

The paper's recipe is the standard CIFAR training setup, which pads,
randomly crops and horizontally flips each batch.  Augmentations operate
on ``(N, C, H, W)`` batches and are driven by a seeded generator so runs
stay reproducible.  They matter to the *selection* story too: the
selection model scores the canonical (un-augmented) image, while the GPU
trains on augmented views — exactly the asymmetry the real system has.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomCrop", "RandomHorizontalFlip", "GaussianNoise", "Compose"]


class RandomCrop:
    """Pad by ``padding`` pixels (reflect) and crop back to the original size."""

    def __init__(self, padding: int = 1):
        if padding < 0:
            raise ValueError("padding cannot be negative")
        self.padding = padding

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.padding == 0:
            return x
        n, c, h, w = x.shape
        p = self.padding
        padded = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)), mode="reflect")
        out = np.empty_like(x)
        offsets_y = rng.integers(0, 2 * p + 1, size=n)
        offsets_x = rng.integers(0, 2 * p + 1, size=n)
        for i in range(n):
            oy, ox = offsets_y[i], offsets_x[i]
            out[i] = padded[i, :, oy : oy + h, ox : ox + w]
        return out


class RandomHorizontalFlip:
    """Flip each image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5):
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.p = p

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        flip = rng.uniform(size=x.shape[0]) < self.p
        out = x.copy()
        out[flip] = out[flip, :, :, ::-1]
        return out


class GaussianNoise:
    """Add zero-mean Gaussian noise (a mild regularizer for synthetic data)."""

    def __init__(self, std: float = 0.05):
        if std < 0:
            raise ValueError("std cannot be negative")
        self.std = std

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.std == 0:
            return x
        return x + rng.normal(0.0, self.std, size=x.shape).astype(x.dtype)


class Compose:
    """Apply augmentations in order with a per-epoch reseeded generator."""

    def __init__(self, transforms: list, seed: int = 0):
        self.transforms = list(transforms)
        self.seed = seed
        self._calls = 0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        rng = np.random.default_rng(self.seed + self._calls)
        self._calls += 1
        for transform in self.transforms:
            x = transform(x, rng)
        return x

    def __len__(self) -> int:
        return len(self.transforms)
