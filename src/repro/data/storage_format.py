"""On-flash dataset layout: a packed binary format with an offset index.

The SmartSSD stores training sets as raw packed records; which *byte
ranges* a subset gather touches depends on the record layout.  This
module implements that layer for real:

- :func:`save_dataset_bin` — serialize a dataset to a single packed file
  (fixed-size records: image tensor + label), with a choice of layout:
  ``"shuffled"`` (arrival order, the default for collected datasets) or
  ``"class_clustered"`` (records grouped by label, which makes per-class
  selection scans sequential);
- :func:`load_dataset_bin` — read it back (whole or by record indices,
  mimicking a scatter-gather);
- :class:`DatasetLayout` — the offset index, which
  :func:`repro.smartssd.trace.generate_subset_gather_trace` can consume
  via :meth:`DatasetLayout.gather_trace` so replayed traces reflect the
  *actual* on-flash geometry rather than an assumed one.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.dataset import Dataset

__all__ = ["DatasetLayout", "save_dataset_bin", "load_dataset_bin"]

_MAGIC = b"NSSA"
_VERSION = 1
_HEADER_FMT = "<4sHHIIII"  # magic, version, reserved, n, c, h, w
_HEADER_BYTES = struct.calcsize(_HEADER_FMT)


@dataclass(frozen=True)
class DatasetLayout:
    """Offset index of a packed dataset file."""

    path: Path
    num_records: int
    image_shape: tuple
    record_bytes: int
    data_offset: int
    order: np.ndarray  # order[i] = global sample id stored at record i

    def record_offset(self, record_index: int) -> int:
        """Byte offset of a record by its *storage* position."""
        if not 0 <= record_index < self.num_records:
            raise IndexError("record index out of range")
        return self.data_offset + record_index * self.record_bytes

    def position_of_id(self, sample_id: int) -> int:
        """Storage position of a global sample id."""
        matches = np.flatnonzero(self.order == sample_id)
        if len(matches) == 0:
            raise KeyError(f"sample id {sample_id} not in layout")
        return int(matches[0])

    def gather_positions(self, sample_ids: np.ndarray) -> np.ndarray:
        """Storage positions of the given sample ids (vectorized)."""
        id_to_pos = np.full(int(self.order.max()) + 1, -1, dtype=np.int64)
        id_to_pos[self.order] = np.arange(self.num_records)
        positions = id_to_pos[np.asarray(sample_ids, dtype=np.int64)]
        if (positions < 0).any():
            raise KeyError("some sample ids are not in the layout")
        return positions

    def gather_trace(self, sample_ids: np.ndarray, batch_images: int = 128):
        """Build the scatter-gather trace this subset produces on flash."""
        from repro.smartssd.trace import generate_subset_gather_trace

        positions = np.sort(self.gather_positions(sample_ids))
        return generate_subset_gather_trace(
            positions,
            bytes_per_image=self.record_bytes,
            batch_images=batch_images,
            base_offset=self.data_offset,
        )


def save_dataset_bin(
    dataset: Dataset, path, layout: str = "shuffled", seed: int = 0
) -> DatasetLayout:
    """Pack a dataset into a single binary file.

    Record format: float32 image tensor (C*H*W values) followed by an
    int64 label and the int64 global sample id.  ``layout`` controls the
    record order on "flash":

    - ``"shuffled"`` — a random permutation (how a collected dataset
      actually lands on disk);
    - ``"class_clustered"`` — grouped by label (the reorganized layout
      the I/O-trace ablation studies).
    """
    if layout not in ("shuffled", "class_clustered"):
        raise ValueError(f"unknown layout {layout!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    n = len(dataset)
    c, h, w = dataset.image_shape
    if layout == "shuffled":
        order = np.random.default_rng(seed).permutation(n)
    else:
        order = np.argsort(dataset.y, kind="stable")

    record_bytes = c * h * w * 4 + 8 + 8
    header = struct.pack(_HEADER_FMT, _MAGIC, _VERSION, 0, n, c, h, w)

    with open(path, "wb") as fh:
        fh.write(header)
        for pos in order:
            fh.write(dataset.x[pos].astype("<f4").tobytes())
            fh.write(struct.pack("<qq", int(dataset.y[pos]), int(dataset.ids[pos])))

    return DatasetLayout(
        path=path,
        num_records=n,
        image_shape=(c, h, w),
        record_bytes=record_bytes,
        data_offset=_HEADER_BYTES,
        order=dataset.ids[order],
    )


def _read_header(fh) -> tuple:
    header = fh.read(_HEADER_BYTES)
    if len(header) != _HEADER_BYTES:
        raise ValueError("truncated dataset file")
    magic, version, _, n, c, h, w = struct.unpack(_HEADER_FMT, header)
    if magic != _MAGIC:
        raise ValueError("not a packed dataset file (bad magic)")
    if version != _VERSION:
        raise ValueError(f"unsupported format version {version}")
    return n, c, h, w


def load_dataset_bin(path, record_indices: np.ndarray | None = None) -> Dataset:
    """Read a packed dataset file (whole, or a scatter-gather of records)."""
    path = Path(path)
    with open(path, "rb") as fh:
        n, c, h, w = _read_header(fh)
        image_values = c * h * w
        record_bytes = image_values * 4 + 16

        if record_indices is None:
            record_indices = np.arange(n)
        record_indices = np.asarray(record_indices, dtype=np.int64)
        if len(record_indices) and (
            record_indices.min() < 0 or record_indices.max() >= n
        ):
            raise IndexError("record index out of range")

        xs = np.empty((len(record_indices), c, h, w), dtype=np.float32)
        ys = np.empty(len(record_indices), dtype=np.int64)
        ids = np.empty(len(record_indices), dtype=np.int64)
        for i, rec in enumerate(record_indices):
            fh.seek(_HEADER_BYTES + int(rec) * record_bytes)
            raw = fh.read(record_bytes)
            if len(raw) != record_bytes:
                raise ValueError("truncated record")
            xs[i] = np.frombuffer(raw, dtype="<f4", count=image_values).reshape(c, h, w)
            ys[i], ids[i] = struct.unpack_from("<qq", raw, image_values * 4)
    return Dataset(xs, ys, ids=ids)
