"""Model and history serialization.

Checkpoints are plain ``.npz`` archives of the model's state dict (the
dotted-name parameter/buffer mapping from
:meth:`repro.nn.modules.Module.state_dict`), so they are portable across
processes and inspectable with numpy alone.  Training histories dump to
JSON for the benchmark harness and examples.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.modules import Module

__all__ = ["save_model", "load_model", "save_history", "load_history"]


def save_model(model: Module, path) -> Path:
    """Write the model's parameters and buffers to an ``.npz`` checkpoint."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = model.state_dict()
    # npz keys cannot be empty; dotted names are fine.
    np.savez(path, **state)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_model(model: Module, path) -> Module:
    """Load a checkpoint into an already-constructed model (in place).

    The architecture must match — extra/missing/mis-shaped keys raise.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    model.load_state_dict(state)
    return model


def save_history(history, path) -> Path:
    """Dump a TrainingHistory to JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    records = [
        {
            "epoch": r.epoch,
            "train_loss": r.train_loss,
            "test_accuracy": r.test_accuracy,
            "subset_size": r.subset_size,
            "subset_fraction": r.subset_fraction,
            "samples_trained": r.samples_trained,
            "selection_ran": r.selection_ran,
            "feedback_bytes": r.feedback_bytes,
            "dropped_samples": r.dropped_samples,
            "lr": r.lr,
        }
        for r in history.records
    ]
    path.write_text(json.dumps({"method": history.method, "records": records}, indent=1))
    return path


def load_history(path):
    """Load a TrainingHistory from JSON."""
    from repro.core.metrics import EpochRecord, TrainingHistory

    data = json.loads(Path(path).read_text())
    history = TrainingHistory(method=data["method"])
    for r in data["records"]:
        history.append(EpochRecord(**r))
    return history
