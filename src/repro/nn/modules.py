"""Layer modules with explicit forward/backward passes.

The design mirrors the torch.nn API surface the paper's training code would
use, but with hand-written backward passes: every :class:`Module` caches the
activations its backward pass needs during ``forward`` and releases them
when ``backward`` consumes them.  Gradients accumulate into
``Parameter.grad`` and are consumed by :mod:`repro.nn.optim`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn import functional as F
from repro.nn.contracts import shape_contract
from repro.nn.scratch import scratch_pool

__all__ = [
    "Parameter",
    "Module",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Identity",
    "Sequential",
]


class Parameter:
    """A trainable array together with its accumulated gradient."""

    def __init__(self, data: np.ndarray, name: str = ""):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class: parameter discovery, train/eval mode, state (de)serialization."""

    def __init__(self):
        self.training = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def children(self) -> Iterator["Module"]:
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def modules(self) -> Iterator["Module"]:
        """All modules in the tree, depth-first, including self."""
        yield self
        for child in self.children():
            yield from child.modules()

    def parameters(self) -> Iterator[Parameter]:
        for module in self.modules():
            for value in module.__dict__.values():
                if isinstance(value, Parameter):
                    yield value

    def named_parameters(self) -> Iterator[tuple[str, Parameter]]:
        """Parameters with hierarchical dotted names, stable across calls."""
        yield from self._named_parameters(prefix="")

    def _named_parameters(self, prefix: str) -> Iterator[tuple[str, Parameter]]:
        for key, value in self.__dict__.items():
            path = f"{prefix}{key}"
            if isinstance(value, Parameter):
                yield path, value
            elif isinstance(value, Module):
                yield from value._named_parameters(prefix=f"{path}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item._named_parameters(prefix=f"{path}.{i}.")

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def state_dict(self) -> dict:
        """Copy of every parameter and buffer, keyed by dotted name."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, buf in self.named_buffers():
            state[name] = buf.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        """In-place load; raises ``KeyError`` on missing and shape mismatch."""
        own = dict(self.named_parameters())
        bufs = dict(self.named_buffers())
        for name, value in state.items():
            if name in own:
                target = own[name].data
            elif name in bufs:
                target = bufs[name]
            else:
                raise KeyError(f"unexpected key in state dict: {name!r}")
            if target.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: {target.shape} vs {value.shape}"
                )
            target[...] = value

    def named_buffers(self) -> Iterator[tuple[str, np.ndarray]]:
        """Non-trainable state (e.g. batchnorm running stats)."""
        yield from self._named_buffers(prefix="")

    def _named_buffers(self, prefix: str) -> Iterator[tuple[str, np.ndarray]]:
        buffer_names = getattr(self, "_buffers", ())
        for key in buffer_names:
            yield f"{prefix}{key}", getattr(self, key)
        for key, value in self.__dict__.items():
            path = f"{prefix}{key}"
            if isinstance(value, Module):
                yield from value._named_buffers(prefix=f"{path}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item._named_buffers(prefix=f"{path}.{i}.")


def _kaiming_init(shape: tuple, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He-normal initialization, the standard for ReLU networks."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


class Conv2d(Module):
    """2-D convolution (square kernels, no dilation/groups — all the ResNets need)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = False,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            _kaiming_init((out_channels, in_channels, kernel_size, kernel_size), fan_in, rng),
            name="conv.weight",
        )
        self.bias = Parameter(np.zeros(out_channels), name="conv.bias") if bias else None
        self._cache: tuple | None = None

    @shape_contract("N,C,H,W -> N,K,H',W'")
    def forward(self, x: np.ndarray) -> np.ndarray:
        bias = self.bias.data if self.bias is not None else None
        pool = scratch_pool()
        if pool is None:
            out, cols = F.conv2d(x, self.weight.data, bias, self.stride, self.padding)
            if self.training:
                self._release_cache()
                self._cache = (cols, x.shape, None)
            return out

        # Pooled path: the blocked column buffer comes from the scratch
        # arena.  In train mode the lease rides in the cache and is
        # released by backward(); otherwise it returns here.
        n, c, h, w = x.shape
        k = self.kernel_size
        oh = (h + 2 * self.padding - k) // self.stride + 1
        ow = (w + 2 * self.padding - k) // self.stride + 1
        lease = pool.lease((n, c * k * k, oh * ow), x.dtype)
        handed_off = False
        try:
            out, cols = F.conv2d(
                x, self.weight.data, bias, self.stride, self.padding,
                cols_out=lease.array,
            )
            if self.training:
                self._release_cache()
                self._cache = (cols, x.shape, lease)
                handed_off = True
            return out
        finally:
            if not handed_off:
                lease.release()

    def _release_cache(self) -> None:
        if self._cache is not None:
            lease = self._cache[2]
            self._cache = None
            if lease is not None:
                lease.release()

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (or in eval mode)")
        cols, x_shape, lease = self._cache
        self._cache = None
        try:
            grad_x, grad_w, grad_b = F.conv2d_backward(
                grad_out,
                cols,
                x_shape,
                self.weight.data,
                self.stride,
                self.padding,
                with_bias=self.bias is not None,
            )
        finally:
            if lease is not None:
                lease.release()
        self.weight.grad += grad_w
        if self.bias is not None:
            self.bias.grad += grad_b
        return grad_x

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding})"
        )


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            _kaiming_init((out_features, in_features), in_features, rng), name="linear.weight"
        )
        self.bias = Parameter(np.zeros(out_features), name="linear.bias") if bias else None
        self._cache: np.ndarray | None = None

    @shape_contract("N,F -> N,G")
    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            self._cache = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out += self.bias.data
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (or in eval mode)")
        x = self._cache
        self._cache = None
        self.weight.grad += grad_out.T @ x
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.data

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class BatchNorm2d(Module):
    """Batch normalization over the channel axis of ``(N, C, H, W)`` inputs."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features), name="bn.weight")
        self.bias = Parameter(np.zeros(num_features), name="bn.bias")
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)
        self._buffers = ("running_mean", "running_var")
        self._cache: tuple | None = None

    @shape_contract("N,C,H,W -> N,C,H,W")
    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            ).astype(np.float32)
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            ).astype(np.float32)
        else:
            mean = self.running_mean
            var = self.running_var

        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = self.weight.data[None, :, None, None] * x_hat + self.bias.data[None, :, None, None]
        if self.training:
            self._cache = (x_hat, inv_std)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (or in eval mode)")
        x_hat, inv_std = self._cache
        self._cache = None
        n, _, h, w = grad_out.shape
        m = n * h * w

        self.weight.grad += (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.bias.grad += grad_out.sum(axis=(0, 2, 3))

        gamma = self.weight.data[None, :, None, None]
        grad_xhat = grad_out * gamma
        # Standard batchnorm backward: subtract the batch-mean components.
        sum_g = grad_xhat.sum(axis=(0, 2, 3), keepdims=True)
        sum_gx = (grad_xhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        grad_x = (grad_xhat - sum_g / m - x_hat * sum_gx / m) * inv_std[None, :, None, None]
        return grad_x

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self):
        super().__init__()
        self._cache: np.ndarray | None = None

    @shape_contract("* -> *")
    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            self._cache = x
        return F.relu(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (or in eval mode)")
        x = self._cache
        self._cache = None
        return F.relu_backward(grad_out, x)


class MaxPool2d(Module):
    """Max pooling."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self._cache: tuple | None = None

    @shape_contract("N,C,H,W -> N,C,H',W'")
    def forward(self, x: np.ndarray) -> np.ndarray:
        out, argmax = F.max_pool2d(x, self.kernel_size, self.stride)
        if self.training:
            self._cache = (argmax, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (or in eval mode)")
        argmax, x_shape = self._cache
        self._cache = None
        return F.max_pool2d_backward(grad_out, argmax, x_shape, self.kernel_size, self.stride)


class AvgPool2d(Module):
    """Average pooling."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self._cache: tuple | None = None

    @shape_contract("N,C,H,W -> N,C,H',W'")
    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            self._cache = x.shape
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (or in eval mode)")
        x_shape = self._cache
        self._cache = None
        return F.avg_pool2d_backward(grad_out, x_shape, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Average over all spatial positions, yielding ``(N, C)``."""

    def __init__(self):
        super().__init__()
        self._cache: tuple | None = None

    @shape_contract("N,C,H,W -> N,C")
    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            self._cache = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (or in eval mode)")
        n, c, h, w = self._cache
        self._cache = None
        grad = grad_out[:, :, None, None] / (h * w)
        return np.broadcast_to(grad, (n, c, h, w)).astype(grad_out.dtype)


class Flatten(Module):
    """Flatten all non-batch dimensions."""

    def __init__(self):
        super().__init__()
        self._cache: tuple | None = None

    @shape_contract("N,... -> N,F")
    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            self._cache = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (or in eval mode)")
        shape = self._cache
        self._cache = None
        return grad_out.reshape(shape)


class Identity(Module):
    """No-op module (used for residual shortcuts with matching shapes)."""

    @shape_contract("* -> *")
    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


class Sequential(Module):
    """Run children in order; backward runs them in reverse."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    @shape_contract("* -> *")
    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential({inner})"
