"""ResNet architectures used in the paper's evaluation (Table 1).

The paper trains ResNet-20 (the CIFAR-style 3-stage network), ResNet-18 and
ResNet-50.  We implement all three faithfully, with a ``width`` multiplier
so tests and laptop-scale experiments can instantiate narrow variants that
train in seconds while keeping the exact block structure.

All variants take ``(N, C, H, W)`` inputs; the stem is the CIFAR-style
3x3/stride-1 convolution (no max-pool), which matches how the paper's small
datasets are trained.
"""

from __future__ import annotations

import numpy as np

from repro.nn.contracts import shape_contract
from repro.nn.modules import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Identity,
    Linear,
    Module,
    ReLU,
    Sequential,
)

__all__ = ["BasicBlock", "Bottleneck", "ResNet", "resnet20", "resnet18", "resnet50"]


class BasicBlock(Module):
    """Two 3x3 convolutions with a residual shortcut (ResNet-18/20/34 block)."""

    expansion = 1

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        self.relu2 = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Module = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    @shape_contract("N,C,H,W -> N,K,H',W'")
    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        out = out + self.shortcut(x)
        return self.relu2(out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.relu2.backward(grad_out)
        grad_short = self.shortcut.backward(grad)
        grad_main = self.bn2.backward(grad)
        grad_main = self.conv2.backward(grad_main)
        grad_main = self.relu1.backward(grad_main)
        grad_main = self.bn1.backward(grad_main)
        grad_main = self.conv1.backward(grad_main)
        return grad_main + grad_short


class Bottleneck(Module):
    """1x1 → 3x3 → 1x1 bottleneck block (ResNet-50 and deeper)."""

    expansion = 4

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        expanded = out_channels * self.expansion
        self.conv1 = Conv2d(in_channels, out_channels, 1, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=stride, padding=1, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        self.relu2 = ReLU()
        self.conv3 = Conv2d(out_channels, expanded, 1, rng=rng)
        self.bn3 = BatchNorm2d(expanded)
        self.relu3 = ReLU()
        if stride != 1 or in_channels != expanded:
            self.shortcut: Module = Sequential(
                Conv2d(in_channels, expanded, 1, stride=stride, rng=rng),
                BatchNorm2d(expanded),
            )
        else:
            self.shortcut = Identity()

    @shape_contract("N,C,H,W -> N,K,H',W'")
    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.relu2(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        out = out + self.shortcut(x)
        return self.relu3(out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.relu3.backward(grad_out)
        grad_short = self.shortcut.backward(grad)
        grad_main = self.bn3.backward(grad)
        grad_main = self.conv3.backward(grad_main)
        grad_main = self.relu2.backward(grad_main)
        grad_main = self.bn2.backward(grad_main)
        grad_main = self.conv2.backward(grad_main)
        grad_main = self.relu1.backward(grad_main)
        grad_main = self.bn1.backward(grad_main)
        grad_main = self.conv1.backward(grad_main)
        return grad_main + grad_short


class ResNet(Module):
    """Generic ResNet over a list of ``(blocks, channels, stride)`` stages.

    The classifier head is a global average pool followed by a linear layer;
    :meth:`features` exposes the pooled embedding, which the selection model
    uses as its gradient proxy input (Section 3.1 of the paper).
    """

    def __init__(
        self,
        block_cls: type,
        stage_blocks: list[int],
        stage_channels: list[int],
        num_classes: int,
        in_channels: int = 3,
        seed: int = 0,
    ):
        super().__init__()
        if len(stage_blocks) != len(stage_channels):
            raise ValueError("stage_blocks and stage_channels must have equal length")
        rng = np.random.default_rng(seed)
        self.num_classes = num_classes
        self.stem_conv = Conv2d(in_channels, stage_channels[0], 3, padding=1, rng=rng)
        self.stem_bn = BatchNorm2d(stage_channels[0])
        self.stem_relu = ReLU()

        stages = []
        current = stage_channels[0]
        for stage_idx, (n_blocks, channels) in enumerate(zip(stage_blocks, stage_channels)):
            blocks = []
            for block_idx in range(n_blocks):
                stride = 2 if (stage_idx > 0 and block_idx == 0) else 1
                blocks.append(block_cls(current, channels, stride=stride, rng=rng))
                current = channels * block_cls.expansion
            stages.append(Sequential(*blocks))
        self.stages = stages
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(current, num_classes, rng=rng)
        self.embedding_dim = current

    @shape_contract("N,C,H,W -> N,L")
    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.fc(self.features(x))

    @shape_contract("N,C,H,W -> N,E")
    def features(self, x: np.ndarray) -> np.ndarray:
        """Pooled penultimate-layer embedding, shape ``(N, embedding_dim)``."""
        out = self.stem_relu(self.stem_bn(self.stem_conv(x)))
        for stage in self.stages:
            out = stage(out)
        return self.pool(out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.fc.backward(grad_out)
        grad = self.pool.backward(grad)
        for stage in reversed(self.stages):
            grad = stage.backward(grad)
        grad = self.stem_relu.backward(grad)
        grad = self.stem_bn.backward(grad)
        return self.stem_conv.backward(grad)

    def __repr__(self) -> str:
        return (
            f"ResNet(block={self.stages[0][0].__class__.__name__}, "
            f"stages={[len(s) for s in self.stages]}, "
            f"params={self.num_parameters()})"
        )


def resnet20(
    num_classes: int = 10, in_channels: int = 3, width: int = 16, seed: int = 0
) -> ResNet:
    """CIFAR-style ResNet-20: 3 stages x 3 BasicBlocks, 16/32/64 channels at width=16."""
    channels = [width, width * 2, width * 4]
    return ResNet(BasicBlock, [3, 3, 3], channels, num_classes, in_channels, seed)


def resnet18(
    num_classes: int = 10, in_channels: int = 3, width: int = 64, seed: int = 0
) -> ResNet:
    """ResNet-18: 4 stages x 2 BasicBlocks, 64/128/256/512 channels at width=64."""
    channels = [width, width * 2, width * 4, width * 8]
    return ResNet(BasicBlock, [2, 2, 2, 2], channels, num_classes, in_channels, seed)


def resnet50(
    num_classes: int = 100, in_channels: int = 3, width: int = 64, seed: int = 0
) -> ResNet:
    """ResNet-50: Bottleneck stages 3/4/6/3, 64/128/256/512 base channels at width=64."""
    channels = [width, width * 2, width * 4, width * 8]
    return ResNet(Bottleneck, [3, 4, 6, 3], channels, num_classes, in_channels, seed)
