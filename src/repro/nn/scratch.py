"""Reusable scratch buffers: lease/return instead of allocate/collect.

The steady-state training loop allocates the same large arrays every
batch — the conv layers' blocked im2col column buffers and the loader's
gathered ``x``/``y`` batch pair — and immediately drops them, so the
allocator churns through hundreds of megabytes per epoch for buffers
whose shapes never change.  :class:`BufferPool` is a small keyed arena
for exactly that pattern: :meth:`~BufferPool.lease` hands out an array
of the requested ``(shape, dtype)`` from a free list (allocating only on
a miss) and :meth:`BufferLease.release` returns it for reuse.  After one
warm-up epoch every lease is served from the pool and the per-epoch
allocation count for pooled buffers drops to zero
(``tests/nn/test_scratch.py`` asserts this against the serial path).

Leases follow the same lifecycle discipline as shared-memory segments
(NES004): they must be ``with``-managed, released in a ``try/finally``,
or ownership-transferred (bound to an attribute / returned) — the NES007
lint rule enforces it.  A leaked lease is not a correctness bug (the
array is simply garbage-collected and the pool re-allocates), but it
silently re-introduces the churn the pool exists to remove.

The pool is thread-safe: the prefetching loader leases from its worker
thread and releases from the consumer thread.

``scratch_pool()`` returns the process-wide default pool used by
:class:`repro.nn.modules.Conv2d` for its column buffers; pass
``None`` to :func:`set_scratch_pool` to disable pooling globally
(every lease then allocates, exactly the pre-pool behavior).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.obs.profile import credit_bytes

__all__ = ["BufferLease", "BufferPool", "scratch_pool", "set_scratch_pool"]


class BufferLease:
    """One checked-out buffer; give it back with :meth:`release`.

    ``array`` is the leased ndarray (C-contiguous, uninitialized
    contents — the lessee overwrites it).  Releasing twice is a no-op,
    so ``with`` blocks compose with explicit early release.
    """

    __slots__ = ("array", "_pool", "_key")

    def __init__(self, array: np.ndarray, pool: "BufferPool | None", key):
        self.array = array
        self._pool = pool
        self._key = key

    def release(self) -> None:
        """Return the buffer to its pool (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool._return(self._key, self.array)

    @property
    def released(self) -> bool:
        return self._pool is None

    def __enter__(self) -> "BufferLease":
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False


class BufferPool:
    """Keyed free-list arena for fixed-shape scratch arrays.

    Parameters
    ----------
    max_free_per_key : free buffers retained per ``(shape, dtype)`` key;
        releases beyond that are dropped to the allocator so a burst of
        odd shapes (e.g. a partial tail batch) cannot pin memory.
    """

    def __init__(self, max_free_per_key: int = 8):
        if max_free_per_key < 1:
            raise ValueError("max_free_per_key must be >= 1")
        self.max_free_per_key = max_free_per_key
        self._free: dict[tuple, list[np.ndarray]] = {}
        self._lock = threading.Lock()
        self.allocations = 0
        self.reuses = 0
        self.outstanding = 0

    @staticmethod
    def _key(shape, dtype) -> tuple:
        return (tuple(int(s) for s in shape), np.dtype(dtype).str)

    def lease(self, shape, dtype=np.float32) -> BufferLease:
        """Check a ``(shape, dtype)`` buffer out of the pool.

        Contents are arbitrary (whatever the previous lessee left); the
        caller is expected to overwrite.  Release via the lease's
        ``with`` block or ``release()`` (NES007).
        """
        key = self._key(shape, dtype)
        with self._lock:
            stack = self._free.get(key)
            array = stack.pop() if stack else None
            if array is not None:
                self.reuses += 1
            else:
                self.allocations += 1
            self.outstanding += 1
        if array is None:
            array = np.empty(key[0], dtype=np.dtype(dtype))
        credit_bytes("mem_pool_lease_bytes", array.nbytes)
        return BufferLease(array, self, key)

    def _return(self, key, array: np.ndarray) -> None:
        credit_bytes("mem_pool_release_bytes", array.nbytes)
        with self._lock:
            self.outstanding -= 1
            stack = self._free.setdefault(key, [])
            if len(stack) < self.max_free_per_key:
                stack.append(array)

    @property
    def stats(self) -> dict:
        """Allocation/reuse accounting (``allocations`` flat == steady state)."""
        with self._lock:
            free = sum(len(s) for s in self._free.values())
            return {
                "allocations": self.allocations,
                "reuses": self.reuses,
                "outstanding": self.outstanding,
                "free": free,
                "keys": len(self._free),
            }

    def clear(self) -> None:
        """Drop every free buffer (outstanding leases are unaffected)."""
        with self._lock:
            self._free.clear()


# -- process-wide default pool (conv scratch) --------------------------------

_SCRATCH: BufferPool | None = BufferPool()


def scratch_pool() -> BufferPool | None:
    """The process-wide scratch pool, or ``None`` when pooling is disabled."""
    return _SCRATCH


def set_scratch_pool(pool: BufferPool | None) -> BufferPool | None:
    """Install ``pool`` as the process-wide scratch arena; returns the old one."""
    global _SCRATCH
    previous = _SCRATCH
    _SCRATCH = pool
    return previous
