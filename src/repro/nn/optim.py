"""Optimizers and LR schedules matching the paper's training recipe.

Section 4.1: SGD with Nesterov momentum 0.9, weight decay 5e-4, initial
learning rate 0.1 divided by 5 at epochs 60/120/160 over 200 epochs.
:class:`MultiStepLR` expresses exactly that schedule; experiment configs
scale the milestones when running shortened trainings.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.modules import Parameter

__all__ = ["SGD", "MultiStepLR", "ConstantLR"]


class SGD:
    """SGD with (optionally Nesterov) momentum and decoupled-from-loss weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 5e-4,
        nesterov: bool = True,
        clip_grad_norm: float | None = None,
    ):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"invalid learning rate: {lr}")
        if momentum < 0:
            raise ValueError(f"invalid momentum: {momentum}")
        if nesterov and momentum == 0:
            raise ValueError("Nesterov momentum requires momentum > 0")
        if clip_grad_norm is not None and clip_grad_norm <= 0:
            raise ValueError("clip_grad_norm must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self.clip_grad_norm = clip_grad_norm
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def _clip_scale(self) -> float:
        """Global-norm gradient clipping factor (1.0 when under the cap)."""
        if self.clip_grad_norm is None:
            return 1.0
        total = np.sqrt(sum(float((p.grad**2).sum()) for p in self.params))
        if total <= self.clip_grad_norm or total == 0.0:
            return 1.0
        return self.clip_grad_norm / total

    def step(self) -> None:
        """Apply one update from the gradients accumulated in ``param.grad``."""
        scale = self._clip_scale()
        for p, v in zip(self.params, self._velocity):
            grad = p.grad * scale if scale != 1.0 else p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = grad + self.momentum * v if self.nesterov else v
            else:
                update = grad
            p.data -= self.lr * update

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class MultiStepLR:
    """Divide the LR by ``gamma_div`` at each milestone epoch (paper: /5 at 60/120/160)."""

    def __init__(
        self,
        optimizer: SGD,
        milestones: Iterable[int],
        gamma_div: float = 5.0,
    ):
        if gamma_div <= 0:
            raise ValueError("gamma_div must be positive")
        self.optimizer = optimizer
        self.milestones = sorted(milestones)
        self.gamma_div = gamma_div
        self.base_lr = optimizer.lr
        self.last_epoch = -1

    def step(self) -> None:
        """Advance one epoch and update the optimizer's LR."""
        self.last_epoch += 1
        passed = sum(1 for m in self.milestones if self.last_epoch >= m)
        self.optimizer.lr = self.base_lr / (self.gamma_div**passed)

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class ConstantLR:
    """A schedule that never changes the LR (baseline / ablation use)."""

    def __init__(self, optimizer: SGD):
        self.optimizer = optimizer
        self.last_epoch = -1

    def step(self) -> None:
        self.last_epoch += 1

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr
