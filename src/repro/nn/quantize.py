"""Weight quantization for the FPGA feedback loop (paper Sections 3 and 3.2.1).

After the GPU trains on a subset, the target model's weights are quantized
and shipped back to the SmartSSD's FPGA, where the selection model runs
forward passes with them.  We implement symmetric per-tensor integer
quantization at a configurable bit width (the paper's kernel uses int8;
the bit-width ablation bench sweeps 4/8/16/32).

:class:`QuantizedModel` wraps any :class:`~repro.nn.modules.Module`: it
snapshots the source model's weights through a quantize→dequantize round
trip, so forward passes through it behave exactly like the FPGA's
fixed-point inference, including the induced rounding error.
"""

from __future__ import annotations

import numpy as np

from repro.nn.contracts import shape_contract
from repro.nn.modules import Module

__all__ = ["quantize_tensor", "dequantize_tensor", "QuantizedModel", "quantized_state_bytes"]


def quantize_tensor(
    x: np.ndarray, bits: int = 8, per_channel: bool = True
) -> tuple[np.ndarray, np.ndarray | float]:
    """Symmetric quantization to ``bits``-wide signed integers.

    Multi-dimensional tensors default to per-output-channel scales (axis
    0), the standard scheme for int8 inference kernels — per-tensor
    scales lose too much precision on small channels.  Returns
    ``(q, scale)`` with ``x ≈ q * scale`` (scale broadcast over axis 0
    when per-channel).  ``bits == 32`` is the identity passthrough (fp32
    feedback, the no-quantization ablation arm).
    """
    if bits < 2 or bits > 32:
        raise ValueError(f"unsupported bit width: {bits}")
    if bits == 32:
        return x.astype(np.float32), 1.0
    if x.size == 0:
        # Degenerate but legal (an empty class bucket, a zero-channel
        # layer): nothing to scale, and ``np.abs(x).max()`` would raise.
        # The identity scale keeps the round trip well defined.
        return np.zeros(x.shape, dtype=np.int32), 1.0
    qmax = 2 ** (bits - 1) - 1

    if per_channel and x.ndim >= 2:
        flat = np.abs(x).reshape(x.shape[0], -1)
        max_abs = flat.max(axis=1)
        scale = np.where(max_abs > 0, max_abs / qmax, 1.0)
        shaped = scale.reshape((-1,) + (1,) * (x.ndim - 1))
        q = np.clip(np.round(x / shaped), -qmax, qmax).astype(np.int32)
        # float32 is the wire format for scales.  A subnormal max_abs can
        # flush the cast to 0.0, leaving a zero point that dequantizes
        # everything to 0 and divides-by-zero downstream — clamp to the
        # smallest normal float32 instead (values that small dequantize
        # to ~1e-38 either way).
        tiny = np.finfo(np.float32).tiny
        scale32 = scale.astype(np.float32)
        return q, np.where(scale32 < tiny, np.float32(tiny), scale32)

    max_abs = float(np.abs(x).max())
    if max_abs == 0.0:
        return np.zeros(x.shape, dtype=np.int32), 1.0
    # Same degenerate-scale guard as the per-channel branch: never hand
    # back a scale that underflows the float32 wire format to zero.
    scale = max(max_abs / qmax, float(np.finfo(np.float32).tiny))
    q = np.clip(np.round(x / scale), -qmax, qmax).astype(np.int32)
    return q, scale


def dequantize_tensor(q: np.ndarray, scale: np.ndarray | float) -> np.ndarray:
    """Inverse of :func:`quantize_tensor` (scalar or per-channel scale)."""
    if np.ndim(scale) == 1:
        shaped = np.asarray(scale, dtype=np.float32).reshape(
            (-1,) + (1,) * (q.ndim - 1)
        )
        return q.astype(np.float32) * shaped
    return q.astype(np.float32) * np.float32(scale)


def quantized_state_bytes(model: Module, bits: int = 8) -> int:
    """Bytes needed to ship the model's quantized weights to the FPGA.

    Parameters are packed at ``bits`` bits each plus one fp32 scale per
    output channel; batchnorm running statistics travel in fp32.  This is
    the feedback-path payload the data-movement accounting charges.
    """
    param_bits = sum(
        p.size * bits + 32 * (p.data.shape[0] if p.data.ndim >= 2 else 1)
        for p in model.parameters()
    )
    buffer_bits = sum(buf.size * 32 for _, buf in model.named_buffers())
    return (param_bits + buffer_bits + 7) // 8


class QuantizedModel:
    """A frozen, quantized snapshot of a model for selection-side inference.

    The wrapped model's parameters are replaced by dequantized copies of
    the source model's weights at snapshot time (:meth:`sync_from`), so the
    selector's forward passes see the same rounding the FPGA would.

    ``activation_bits`` additionally fake-quantizes activations at the
    stage boundaries of ResNet-like models (stem output and each stage
    output), emulating the int8 activation path of the real kernel; the
    default ``None`` keeps activations in fp32 (weight-only
    quantization).
    """

    def __init__(self, model: Module, bits: int = 8, activation_bits: int | None = None):
        if activation_bits is not None and not 2 <= activation_bits <= 16:
            raise ValueError("activation_bits must be in [2, 16] (or None)")
        self.model = model
        self.bits = bits
        self.activation_bits = activation_bits
        self.model.eval()
        self.synced = False

    def sync_from(self, source: Module) -> int:
        """Copy ``source``'s state through quantization. Returns payload bytes.

        This is one trip of the feedback loop: GPU weights → quantize →
        (PCIe transfer, charged by the caller using the returned size) →
        dequantize into the FPGA-side model.
        """
        src_params = dict(source.named_parameters())
        dst_params = dict(self.model.named_parameters())
        if src_params.keys() != dst_params.keys():
            raise ValueError("source and quantized model architectures differ")
        for name, src in src_params.items():
            if src.data.shape != dst_params[name].data.shape:
                raise ValueError(
                    f"source and quantized model architectures differ at {name!r}: "
                    f"{src.data.shape} vs {dst_params[name].data.shape}"
                )
            q, scale = quantize_tensor(src.data, self.bits)
            dst_params[name].data = dequantize_tensor(q, scale)
        src_bufs = dict(source.named_buffers())
        for name, buf in self.model.named_buffers():
            buf[...] = src_bufs[name]
        self.synced = True
        return quantized_state_bytes(source, self.bits)

    @shape_contract("N,C,H,W -> N,L")
    def forward(self, x: np.ndarray) -> np.ndarray:
        self.model.eval()
        if self.activation_bits is None or not hasattr(self.model, "stages"):
            return self.model(x)
        return self.model.fc(self.features(x))

    __call__ = forward

    def features(self, x: np.ndarray) -> np.ndarray:
        self.model.eval()
        if self.activation_bits is None or not hasattr(self.model, "stages"):
            return self.model.features(x)
        # Staged forward with fake-quantized activations at stage
        # boundaries — the int8 activation path of the FPGA kernel.
        out = self._fake_quant(x)
        out = self.model.stem_relu(self.model.stem_bn(self.model.stem_conv(out)))
        out = self._fake_quant(out)
        for stage in self.model.stages:
            out = self._fake_quant(stage(out))
        return self.model.pool(out)

    def _fake_quant(self, x: np.ndarray) -> np.ndarray:
        q, scale = quantize_tensor(x, bits=self.activation_bits, per_channel=False)
        return dequantize_tensor(q, scale)
