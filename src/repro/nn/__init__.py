"""From-scratch numpy neural-network substrate.

Implements everything the NeSSA training loop needs: layers with explicit
forward/backward passes, ResNet architectures, SGD with Nesterov momentum
and the paper's multi-step LR schedule, a cross-entropy loss that exposes
per-sample losses and last-layer gradients (the selection model's inputs),
and int8 weight quantization for the FPGA feedback loop.
"""

from repro.nn.functional import (
    avg_pool2d,
    col2im,
    conv2d,
    conv2d_backward,
    im2col,
    log_softmax,
    max_pool2d,
    max_pool2d_backward,
    relu,
    softmax,
)
from repro.nn.loss import CrossEntropyLoss
from repro.nn.modules import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
)
from repro.nn.optim import SGD, ConstantLR, MultiStepLR
from repro.nn.scratch import BufferLease, BufferPool, scratch_pool, set_scratch_pool
from repro.nn.quantize import QuantizedModel, dequantize_tensor, quantize_tensor
from repro.nn.resnet import BasicBlock, Bottleneck, ResNet, resnet18, resnet20, resnet50
from repro.nn.serialize import load_history, load_model, save_history, save_model

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "conv2d_backward",
    "max_pool2d",
    "max_pool2d_backward",
    "avg_pool2d",
    "relu",
    "softmax",
    "log_softmax",
    "Parameter",
    "Module",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Identity",
    "Sequential",
    "CrossEntropyLoss",
    "SGD",
    "MultiStepLR",
    "ConstantLR",
    "quantize_tensor",
    "dequantize_tensor",
    "QuantizedModel",
    "ResNet",
    "BasicBlock",
    "Bottleneck",
    "resnet20",
    "resnet18",
    "resnet50",
    "save_model",
    "load_model",
    "save_history",
    "load_history",
    "BufferLease",
    "BufferPool",
    "scratch_pool",
    "set_scratch_pool",
]
