"""Low-level numpy kernels: convolution via im2col, pooling, activations.

All kernels operate on arrays shaped ``(N, C, H, W)`` (batch, channels,
height, width) in float32 and come in forward/backward pairs.  The backward
functions take the upstream gradient and whatever cached values the forward
pass produced, mirroring how the module layer in :mod:`repro.nn.modules`
drives them.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "conv2d_backward",
    "max_pool2d",
    "max_pool2d_backward",
    "avg_pool2d",
    "avg_pool2d_backward",
    "relu",
    "relu_backward",
    "softmax",
    "log_softmax",
]


def _out_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a conv/pool window sweep."""
    return (size + 2 * pad - kernel) // stride + 1


def im2col(x: np.ndarray, kernel: int, stride: int = 1, pad: int = 0) -> np.ndarray:
    """Unfold ``(N, C, H, W)`` into ``(N * OH * OW, C * kernel * kernel)``.

    Each row is one receptive field, so a convolution becomes a single
    matrix multiply against the flattened filter bank.
    """
    n, c, h, w = x.shape
    oh = _out_size(h, kernel, stride, pad)
    ow = _out_size(w, kernel, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")

    cols = np.empty((n, c, kernel, kernel, oh, ow), dtype=x.dtype)
    for ky in range(kernel):
        y_max = ky + stride * oh
        for kx in range(kernel):
            x_max = kx + stride * ow
            cols[:, :, ky, kx, :, :] = x[:, :, ky:y_max:stride, kx:x_max:stride]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, -1)


def col2im(
    cols: np.ndarray,
    x_shape: tuple,
    kernel: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Fold the im2col matrix back to ``(N, C, H, W)``, summing overlaps.

    This is the adjoint of :func:`im2col` and therefore exactly the gradient
    routing a convolution's backward pass needs.
    """
    n, c, h, w = x_shape
    oh = _out_size(h, kernel, stride, pad)
    ow = _out_size(w, kernel, stride, pad)
    cols = cols.reshape(n, oh, ow, c, kernel, kernel).transpose(0, 3, 4, 5, 1, 2)

    x = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for ky in range(kernel):
        y_max = ky + stride * oh
        for kx in range(kernel):
            x_max = kx + stride * ow
            x[:, :, ky:y_max:stride, kx:x_max:stride] += cols[:, :, ky, kx, :, :]
    if pad > 0:
        return x[:, :, pad : pad + h, pad : pad + w]
    return x


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    pad: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """2-D convolution. ``weight`` is ``(C_out, C_in, K, K)``.

    Returns ``(output, cols)`` where ``cols`` is the im2col cache the
    backward pass reuses.
    """
    n, _, h, w = x.shape
    c_out, _, k, _ = weight.shape
    oh = _out_size(h, k, stride, pad)
    ow = _out_size(w, k, stride, pad)

    cols = im2col(x, k, stride, pad)
    out = cols @ weight.reshape(c_out, -1).T
    if bias is not None:
        out += bias
    out = out.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)
    return out, cols


def conv2d_backward(
    grad_out: np.ndarray,
    cols: np.ndarray,
    x_shape: tuple,
    weight: np.ndarray,
    stride: int = 1,
    pad: int = 0,
    with_bias: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Backward pass of :func:`conv2d`.

    Returns ``(grad_x, grad_weight, grad_bias)``; ``grad_bias`` is ``None``
    unless ``with_bias`` is set.
    """
    c_out, c_in, k, _ = weight.shape
    grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, c_out)

    grad_weight = (grad_flat.T @ cols).reshape(c_out, c_in, k, k)
    grad_bias = grad_flat.sum(axis=0) if with_bias else None
    grad_cols = grad_flat @ weight.reshape(c_out, -1)
    grad_x = col2im(grad_cols, x_shape, k, stride, pad)
    return grad_x, grad_weight, grad_bias


def max_pool2d(
    x: np.ndarray, kernel: int, stride: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Max pooling. Returns ``(output, argmax)`` with argmax cached for backward."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = _out_size(h, kernel, stride, 0)
    ow = _out_size(w, kernel, stride, 0)

    cols = im2col(x, kernel, stride, 0).reshape(n * oh * ow, c, kernel * kernel)
    # im2col rows are (c, k*k) blocks ordered channel-major after the reshape
    cols = cols.reshape(n * oh * ow * c, kernel * kernel)
    argmax = cols.argmax(axis=1)
    out = cols[np.arange(cols.shape[0]), argmax]
    out = out.reshape(n, oh, ow, c).transpose(0, 3, 1, 2)
    return out, argmax


def max_pool2d_backward(
    grad_out: np.ndarray,
    argmax: np.ndarray,
    x_shape: tuple,
    kernel: int,
    stride: int | None = None,
) -> np.ndarray:
    """Backward pass of :func:`max_pool2d` — route gradients to the argmax."""
    stride = stride or kernel
    n, c, h, w = x_shape
    oh = _out_size(h, kernel, stride, 0)
    ow = _out_size(w, kernel, stride, 0)

    grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1)
    grad_cols = np.zeros((n * oh * ow * c, kernel * kernel), dtype=grad_out.dtype)
    grad_cols[np.arange(grad_cols.shape[0]), argmax] = grad_flat
    grad_cols = grad_cols.reshape(n * oh * ow, c * kernel * kernel)
    return col2im(grad_cols, x_shape, kernel, stride, 0)


def avg_pool2d(x: np.ndarray, kernel: int, stride: int | None = None) -> np.ndarray:
    """Average pooling over non-overlapping (or strided) windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = _out_size(h, kernel, stride, 0)
    ow = _out_size(w, kernel, stride, 0)
    cols = im2col(x, kernel, stride, 0).reshape(n * oh * ow, c, kernel * kernel)
    out = cols.mean(axis=2)
    return out.reshape(n, oh, ow, c).transpose(0, 3, 1, 2)


def avg_pool2d_backward(
    grad_out: np.ndarray, x_shape: tuple, kernel: int, stride: int | None = None
) -> np.ndarray:
    """Backward pass of :func:`avg_pool2d` — spread gradients uniformly."""
    stride = stride or kernel
    n, c, h, w = x_shape
    oh = _out_size(h, kernel, stride, 0)
    ow = _out_size(w, kernel, stride, 0)
    grad = grad_out.transpose(0, 2, 3, 1).reshape(n * oh * ow, c, 1)
    grad_cols = np.broadcast_to(grad / (kernel * kernel), (n * oh * ow, c, kernel * kernel))
    grad_cols = grad_cols.reshape(n * oh * ow, c * kernel * kernel)
    return col2im(grad_cols, x_shape, kernel, stride, 0)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear activation."""
    return np.maximum(x, 0.0)


def relu_backward(grad_out: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Backward pass of :func:`relu` given the forward input."""
    return grad_out * (x > 0)


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
