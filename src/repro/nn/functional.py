"""Low-level numpy kernels: convolution via im2col, pooling, activations.

All kernels operate on arrays shaped ``(N, C, H, W)`` (batch, channels,
height, width) in float32 and come in forward/backward pairs.  The backward
functions take the upstream gradient and whatever cached values the forward
pass produced, mirroring how the module layer in :mod:`repro.nn.modules`
drives them.

Performance notes
-----------------
``im2col`` is built from a zero-copy ``np.lib.stride_tricks.as_strided``
window view followed by a single reshape-copy, replacing the seed's
``kernel^2`` Python-loop slice fills (the loop is kept as
``_im2col_loop`` / ``_col2im_loop`` for equivalence tests and
before/after benchmarks — the strided version is bit-identical).

Convolution and pooling run on a *blocked* column layout
``(N, C*K*K, OH*OW)`` (:func:`im2col_blocked`): because that layout is a
free reshape of the strided window copy, the forward pass is one batched
GEMM with **no** transpose-gathers on either the columns or the output,
and the backward pass reuses the forward's column buffer (threaded
through the ``cols`` cache that :class:`repro.nn.modules.Conv2d` holds
per batch) plus a scatter-add that reads contiguous blocks.  The public
:func:`im2col`/:func:`col2im` pair keeps the seed's row-major
``(N*OH*OW, C*K*K)`` layout and exact numerics.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

__all__ = [
    "im2col",
    "col2im",
    "im2col_blocked",
    "col2im_blocked",
    "conv2d",
    "conv2d_backward",
    "max_pool2d",
    "max_pool2d_backward",
    "avg_pool2d",
    "avg_pool2d_backward",
    "relu",
    "relu_backward",
    "softmax",
    "log_softmax",
]


def _out_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a conv/pool window sweep."""
    return (size + 2 * pad - kernel) // stride + 1


def _pad2d(x: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad the two spatial axes (cheaper than generic ``np.pad``)."""
    if pad == 0:
        return x
    n, c, h, w = x.shape
    out = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=x.dtype)
    out[:, :, pad : pad + h, pad : pad + w] = x
    return out


def _window_view(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Zero-copy ``(N, C, K, K, OH, OW)`` sliding-window view of a padded input."""
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    sn, sc, sh, sw = x.strides
    return as_strided(
        x,
        shape=(n, c, kernel, kernel, oh, ow),
        strides=(sn, sc, sh, sw, sh * stride, sw * stride),
    )


def im2col(x: np.ndarray, kernel: int, stride: int = 1, pad: int = 0) -> np.ndarray:
    """Unfold ``(N, C, H, W)`` into ``(N * OH * OW, C * kernel * kernel)``.

    Each row is one receptive field, so a convolution becomes a single
    matrix multiply against the flattened filter bank.  Built from a
    strided window view and one contiguous copy; bit-identical to the
    seed loop (``_im2col_loop``).
    """
    n, c, h, w = x.shape
    oh = _out_size(h, kernel, stride, pad)
    ow = _out_size(w, kernel, stride, pad)
    view = _window_view(_pad2d(x, pad), kernel, stride)
    cols = np.ascontiguousarray(view)
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, -1)


def col2im(
    cols: np.ndarray,
    x_shape: tuple,
    kernel: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Fold the im2col matrix back to ``(N, C, H, W)``, summing overlaps.

    This is the adjoint of :func:`im2col` and therefore exactly the gradient
    routing a convolution's backward pass needs.
    """
    n, c, h, w = x_shape
    oh = _out_size(h, kernel, stride, pad)
    ow = _out_size(w, kernel, stride, pad)
    cols = cols.reshape(n, oh, ow, c, kernel, kernel).transpose(0, 3, 4, 5, 1, 2)
    return _scatter_windows(cols, x_shape, kernel, stride, pad)


def im2col_blocked(
    x: np.ndarray, kernel: int, stride: int = 1, pad: int = 0,
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold into the blocked ``(N, C*K*K, OH*OW)`` layout.

    This layout is a free reshape of the contiguous window copy — no
    transpose-gather — and GEMMs directly against a ``(C_out, C*K*K)``
    filter bank, producing output already in channel-major order.
    Returns ``(cols, (oh, ow))``.

    ``out``, when given, receives the column copy instead of a fresh
    allocation — a C-contiguous ``(N, C*K*K, OH*OW)`` buffer of ``x``'s
    dtype (the :mod:`repro.nn.scratch` pool leases these); the copy is
    bit-identical either way.
    """
    n, c, h, w = x.shape
    oh = _out_size(h, kernel, stride, pad)
    ow = _out_size(w, kernel, stride, pad)
    view = _window_view(_pad2d(x, pad), kernel, stride)
    if out is not None:
        np.copyto(out.reshape(n, c, kernel, kernel, oh, ow), view)
        return out, (oh, ow)
    cols = np.ascontiguousarray(view).reshape(n, c * kernel * kernel, oh * ow)
    return cols, (oh, ow)


def col2im_blocked(
    cols: np.ndarray,
    x_shape: tuple,
    kernel: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Adjoint of :func:`im2col_blocked`: fold ``(N, C*K*K, OH*OW)`` back.

    Unlike :func:`col2im`, the kernel-position slices here are contiguous
    reads, which makes the scatter-add memory-bandwidth bound instead of
    gather-bound.
    """
    n, c, h, w = x_shape
    oh = _out_size(h, kernel, stride, pad)
    ow = _out_size(w, kernel, stride, pad)
    windows = cols.reshape(n, c, kernel, kernel, oh, ow)
    return _scatter_windows(windows, x_shape, kernel, stride, pad)


def _scatter_windows(
    windows: np.ndarray, x_shape: tuple, kernel: int, stride: int, pad: int
) -> np.ndarray:
    """Sum ``(N, C, K, K, OH, OW)`` window gradients back onto the input grid."""
    n, c, h, w = x_shape
    oh, ow = windows.shape[4], windows.shape[5]
    x = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=windows.dtype)
    for ky in range(kernel):
        y_max = ky + stride * oh
        for kx in range(kernel):
            x_max = kx + stride * ow
            if ky == 0 and kx == 0:
                # The accumulator starts at zero: plain assignment saves a
                # full read pass over the largest array.
                x[:, :, :y_max:stride, :x_max:stride] = windows[:, :, 0, 0]
            else:
                x[:, :, ky:y_max:stride, kx:x_max:stride] += windows[:, :, ky, kx]
    if pad > 0:
        return x[:, :, pad : pad + h, pad : pad + w]
    return x


def _im2col_loop(x: np.ndarray, kernel: int, stride: int = 1, pad: int = 0) -> np.ndarray:
    """Seed ``kernel^2``-slice im2col (reference for tests/benchmarks)."""
    n, c, h, w = x.shape
    oh = _out_size(h, kernel, stride, pad)
    ow = _out_size(w, kernel, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")

    cols = np.empty((n, c, kernel, kernel, oh, ow), dtype=x.dtype)
    for ky in range(kernel):
        y_max = ky + stride * oh
        for kx in range(kernel):
            x_max = kx + stride * ow
            cols[:, :, ky, kx, :, :] = x[:, :, ky:y_max:stride, kx:x_max:stride]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, -1)


def _col2im_loop(
    cols: np.ndarray,
    x_shape: tuple,
    kernel: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Seed ``kernel^2``-slice col2im (reference for tests/benchmarks)."""
    n, c, h, w = x_shape
    oh = _out_size(h, kernel, stride, pad)
    ow = _out_size(w, kernel, stride, pad)
    cols = cols.reshape(n, oh, ow, c, kernel, kernel).transpose(0, 3, 4, 5, 1, 2)

    x = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for ky in range(kernel):
        y_max = ky + stride * oh
        for kx in range(kernel):
            x_max = kx + stride * ow
            x[:, :, ky:y_max:stride, kx:x_max:stride] += cols[:, :, ky, kx, :, :]
    if pad > 0:
        return x[:, :, pad : pad + h, pad : pad + w]
    return x


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    pad: int = 0,
    cols_out: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """2-D convolution. ``weight`` is ``(C_out, C_in, K, K)``.

    Returns ``(output, cols)`` where ``cols`` is the blocked
    ``(N, C*K*K, OH*OW)`` column buffer (:func:`im2col_blocked`) that the
    backward pass reuses — the forward builds it once per batch and
    :class:`repro.nn.modules.Conv2d` threads it through, so backward
    never re-derives columns.  ``cols_out`` lets the caller supply that
    buffer (a pooled scratch lease) instead of allocating it per batch.
    """
    n = x.shape[0]
    c_out, _, k, _ = weight.shape
    cols, (oh, ow) = im2col_blocked(x, k, stride, pad, out=cols_out)
    out = np.matmul(weight.reshape(c_out, -1), cols)  # (n, c_out, oh*ow)
    if bias is not None:
        out += bias[:, None]
    return out.reshape(n, c_out, oh, ow), cols


def conv2d_backward(
    grad_out: np.ndarray,
    cols: np.ndarray,
    x_shape: tuple,
    weight: np.ndarray,
    stride: int = 1,
    pad: int = 0,
    with_bias: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Backward pass of :func:`conv2d` given its blocked column cache.

    Returns ``(grad_x, grad_weight, grad_bias)``; ``grad_bias`` is ``None``
    unless ``with_bias`` is set.  ``grad_weight`` is one batched GEMM on
    the blocked layout.  ``grad_x`` fuses the column gradient with its
    scatter: each kernel position's ``(C_in, C_out)`` filter slice
    multiplies the output gradient and accumulates straight into the
    padded input-gradient buffer, so the ``(N, C*K*K, OH*OW)`` column
    gradient is never materialized.
    """
    c_out, c_in, k, _ = weight.shape
    n, _, h, w = x_shape
    oh, ow = grad_out.shape[2], grad_out.shape[3]
    g = grad_out.reshape(n, c_out, -1)  # (n, c_out, oh*ow), free reshape

    grad_weight = (
        np.matmul(g, cols.transpose(0, 2, 1)).sum(axis=0).reshape(c_out, c_in, k, k)
    )
    grad_bias = grad_out.sum(axis=(0, 2, 3)) if with_bias else None

    grad_x = np.zeros((n, c_in, h + 2 * pad, w + 2 * pad), dtype=grad_out.dtype)
    for ky in range(k):
        y_max = ky + stride * oh
        for kx in range(k):
            x_max = kx + stride * ow
            contrib = np.matmul(weight[:, :, ky, kx].T, g).reshape(n, c_in, oh, ow)
            target = grad_x[:, :, ky:y_max:stride, kx:x_max:stride]
            if ky == 0 and kx == 0:
                target[...] = contrib  # buffer is calloc-zero: skip the read pass
            else:
                target += contrib
    if pad > 0:
        grad_x = grad_x[:, :, pad : pad + h, pad : pad + w]
    return grad_x, grad_weight, grad_bias


def max_pool2d(
    x: np.ndarray, kernel: int, stride: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Max pooling. Returns ``(output, argmax)`` with argmax cached for backward.

    ``argmax`` is ``(N, C, OH*OW)`` holding flat ``ky*K + kx`` window
    positions (ties resolve to the first maximum, as in the seed kernel).
    """
    n, c, h, w = x.shape
    cols, (oh, ow) = im2col_blocked(x, kernel, stride or kernel, 0)
    windows = cols.reshape(n, c, kernel * kernel, oh * ow)
    argmax = windows.argmax(axis=2)  # (n, c, oh*ow)
    out = np.take_along_axis(windows, argmax[:, :, None, :], axis=2)[:, :, 0, :]
    return out.reshape(n, c, oh, ow), argmax


def max_pool2d_backward(
    grad_out: np.ndarray,
    argmax: np.ndarray,
    x_shape: tuple,
    kernel: int,
    stride: int | None = None,
) -> np.ndarray:
    """Backward pass of :func:`max_pool2d` — route gradients to the argmax."""
    stride = stride or kernel
    n, c, h, w = x_shape
    oh = _out_size(h, kernel, stride, 0)
    ow = _out_size(w, kernel, stride, 0)

    grad_windows = np.zeros((n, c, kernel * kernel, oh * ow), dtype=grad_out.dtype)
    np.put_along_axis(
        grad_windows, argmax[:, :, None, :], grad_out.reshape(n, c, 1, -1), axis=2
    )
    return col2im_blocked(
        grad_windows.reshape(n, c * kernel * kernel, oh * ow), x_shape, kernel, stride, 0
    )


def avg_pool2d(x: np.ndarray, kernel: int, stride: int | None = None) -> np.ndarray:
    """Average pooling over non-overlapping (or strided) windows."""
    n, c, h, w = x.shape
    cols, (oh, ow) = im2col_blocked(x, kernel, stride or kernel, 0)
    out = cols.reshape(n, c, kernel * kernel, oh * ow).mean(axis=2)
    return out.reshape(n, c, oh, ow)


def avg_pool2d_backward(
    grad_out: np.ndarray, x_shape: tuple, kernel: int, stride: int | None = None
) -> np.ndarray:
    """Backward pass of :func:`avg_pool2d` — spread gradients uniformly."""
    stride = stride or kernel
    n, c, h, w = x_shape
    oh = _out_size(h, kernel, stride, 0)
    ow = _out_size(w, kernel, stride, 0)
    grad = grad_out.reshape(n, c, 1, oh * ow) / (kernel * kernel)
    grad_windows = np.broadcast_to(grad, (n, c, kernel * kernel, oh * ow))
    return col2im_blocked(
        grad_windows.reshape(n, c * kernel * kernel, oh * ow), x_shape, kernel, stride, 0
    )


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear activation."""
    return np.maximum(x, 0.0)


def relu_backward(grad_out: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Backward pass of :func:`relu` given the forward input."""
    return grad_out * (x > 0)


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
