"""Cross-entropy loss exposing the quantities the selection model consumes.

NeSSA's selector needs, per training example: the loss value (for subset
biasing, Section 3.2.2) and the last-layer gradient (the CRAIG gradient
proxy, Section 3.1).  For a softmax + cross-entropy head, the gradient of
the loss with respect to the logits is exactly ``softmax(z) - onehot(y)``,
so :meth:`CrossEntropyLoss.last_layer_gradients` returns that quantity
without any backward pass — mirroring how the paper's FPGA kernel derives
it from a forward pass alone.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import log_softmax, softmax

__all__ = ["CrossEntropyLoss"]


class CrossEntropyLoss:
    """Softmax cross-entropy with optional per-sample weights.

    CRAIG trains on a weighted subset (each medoid stands in for its
    cluster), so the loss accepts per-sample weights; the gradient passed
    back to the network is scaled accordingly.
    """

    def __init__(self):
        self._cache: tuple | None = None

    def forward(
        self,
        logits: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> float:
        """Mean (weighted) cross-entropy over the batch."""
        n = logits.shape[0]
        if targets.shape[0] != n:
            raise ValueError("logits and targets batch sizes differ")
        log_probs = log_softmax(logits, axis=1)
        per_sample = -log_probs[np.arange(n), targets]
        if weights is None:
            loss = float(per_sample.mean())
        else:
            weights = np.asarray(weights, dtype=np.float64)
            loss = float((per_sample * weights).sum() / weights.sum())
        self._cache = (logits, targets, weights)
        return loss

    __call__ = forward

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        logits, targets, weights = self._cache
        self._cache = None
        n = logits.shape[0]
        grad = softmax(logits, axis=1)
        grad[np.arange(n), targets] -= 1.0
        if weights is None:
            grad /= n
        else:
            grad *= (weights / weights.sum())[:, None]
        return grad.astype(np.float32)

    @staticmethod
    def per_sample_losses(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Loss of each example separately (subset-biasing input)."""
        n = logits.shape[0]
        log_probs = log_softmax(logits, axis=1)
        return -log_probs[np.arange(n), targets]

    @staticmethod
    def last_layer_gradients(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Per-sample gradient w.r.t. the logits: ``softmax(z) - onehot(y)``.

        This is the gradient proxy CRAIG/NeSSA cluster on — computable from
        a forward pass only, which is what makes the FPGA offload cheap.
        """
        n = logits.shape[0]
        grad = softmax(logits, axis=1)
        grad[np.arange(n), targets] -= 1.0
        return grad
