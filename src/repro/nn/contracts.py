"""Shape contracts for ``repro.nn`` forward passes.

A contract is a declarative spec string attached to a ``forward`` method::

    @shape_contract("N,C,H,W -> N,K,H',W'")
    def forward(self, x): ...

The grammar is deliberately tiny — comma-separated dimension tokens on
each side of one ``->``:

- ``N``, ``C``, ``H'`` … — named symbolic dims (primes mark "same axis,
  possibly different extent", e.g. a strided convolution's ``H'``);
- ``*`` — any shape, preserved exactly (elementwise ops, containers);
- ``...`` — zero or more dims (at most once per side).

Contracts are *static* metadata: the decorator validates the spec once at
import time, registers it by qualname in :data:`CONTRACTS`, and attaches
it as ``__shape_contract__`` — it adds zero per-call overhead.  The
NES005 checker in :mod:`repro.analysis` verifies every public forward
carries one and that declared pipelines compose (:func:`check_chain`).

This module is stdlib-only so the lint engine can import it without
pulling in numpy.
"""

from __future__ import annotations

import re

__all__ = [
    "ContractError",
    "parse_spec",
    "compose",
    "check_chain",
    "shape_contract",
    "CONTRACTS",
]

#: Registry of declared contracts, keyed by function qualname
#: (e.g. ``"Conv2d.forward"``).
CONTRACTS: dict[str, str] = {}

_DIM = re.compile(r"^(?:\*|\.\.\.|[A-Za-z][A-Za-z0-9_]*'*)$")


class ContractError(ValueError):
    """A malformed contract spec or a non-composing contract chain."""


def _parse_side(side: str, spec: str) -> tuple[str, ...]:
    dims = tuple(token.strip() for token in side.strip().split(","))
    if any(not token for token in dims):
        raise ContractError(f"empty dimension token in contract {spec!r}")
    for token in dims:
        if not _DIM.match(token):
            raise ContractError(f"bad dimension token {token!r} in contract {spec!r}")
    if "*" in dims and len(dims) != 1:
        raise ContractError(f"'*' must stand alone in contract {spec!r}")
    if dims.count("...") > 1:
        raise ContractError(f"at most one '...' per side in contract {spec!r}")
    named = [token for token in dims if token not in ("*", "...")]
    seen: set[str] = set()
    for token in named:
        if token in seen:
            raise ContractError(
                f"duplicate dimension {token!r} on one side of contract "
                f"{spec!r}: name each axis once (use primes, e.g. "
                f"{token}', for a distinct extent)"
            )
        seen.add(token)
    return dims


def parse_spec(spec: str) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Parse ``"N,C,H,W -> N,K,H',W'"`` into (input dims, output dims)."""
    if not isinstance(spec, str):
        raise ContractError(f"contract spec must be a string, got {type(spec).__name__}")
    if spec.count("->") != 1:
        raise ContractError(f"contract needs exactly one '->': {spec!r}")
    left, right = spec.split("->")
    dims_in, dims_out = _parse_side(left, spec), _parse_side(right, spec)
    if ("*" in dims_in) != ("*" in dims_out):
        raise ContractError(f"'*' contracts must be '* -> *' (passthrough): {spec!r}")
    return dims_in, dims_out


def _accepts(current: tuple[str, ...] | None, dims_in: tuple[str, ...]) -> bool:
    """Does a shape of ``current``'s arity satisfy ``dims_in``?"""
    if current is None or current == ("*",) or dims_in == ("*",):
        return True
    if "..." in dims_in:
        return len(current) >= len(dims_in) - 1
    if "..." in current:
        return len(dims_in) >= len(current) - 1
    return len(current) == len(dims_in)


def compose(current: tuple[str, ...] | None, spec: str) -> tuple[str, ...] | None:
    """Feed a shape (the previous stage's output dims) through ``spec``.

    Returns the new output dims, or the unchanged input for ``* -> *``
    passthrough stages.  Raises :class:`ContractError` when the arities
    cannot line up.
    """
    dims_in, dims_out = parse_spec(spec)
    if not _accepts(current, dims_in):
        raise ContractError(
            f"contract {spec!r} expects {len(dims_in)} dims, got "
            f"{len(current)} ({','.join(current)})"
        )
    if dims_in == ("*",):  # passthrough: shape flows through unchanged
        return current
    return dims_out


def check_chain(specs: list[str]) -> tuple[str, ...] | None:
    """Verify a pipeline of contracts composes; return the final out dims.

    ``specs`` are contract strings in application order.  The first
    stage's input is unconstrained; every later stage must accept the
    arity its predecessor produces.
    """
    current: tuple[str, ...] | None = None
    for spec in specs:
        current = compose(current, spec)
    return current


def shape_contract(spec: str):
    """Attach a validated shape contract to a forward method."""
    parse_spec(spec)  # fail at import time, not lint time

    def wrap(fn):
        fn.__shape_contract__ = spec
        CONTRACTS[fn.__qualname__] = spec
        return fn

    return wrap
