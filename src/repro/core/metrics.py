"""Training telemetry: per-epoch records and aggregate histories.

Trainers emit one :class:`EpochRecord` per epoch; :class:`TrainingHistory`
aggregates them and answers the questions the paper's evaluation asks
(final accuracy, accuracy-at-epoch curves for Figure 5, total samples
trained on, data-movement counters for the system model).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import Dataset
from repro.nn.modules import Module

__all__ = ["EpochRecord", "TrainingHistory", "evaluate_accuracy"]


@dataclass
class EpochRecord:
    """Everything one training epoch produced."""

    epoch: int
    train_loss: float
    test_accuracy: float
    subset_size: int
    subset_fraction: float
    samples_trained: int
    selection_ran: bool = False
    selection_proxy_flops: float = 0.0
    selection_pairwise_bytes: int = 0
    feedback_bytes: int = 0
    dropped_samples: int = 0
    lr: float = 0.0
    wall_time_s: float = 0.0
    selection_time_s: float = 0.0


@dataclass
class TrainingHistory:
    """Aggregate over a full training run."""

    records: list = field(default_factory=list)
    method: str = ""

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    @property
    def epochs(self) -> int:
        return len(self.records)

    @property
    def final_accuracy(self) -> float:
        if not self.records:
            raise ValueError("empty history")
        return self.records[-1].test_accuracy

    @property
    def best_accuracy(self) -> float:
        if not self.records:
            raise ValueError("empty history")
        return max(r.test_accuracy for r in self.records)

    def stable_accuracy(self, window: int = 3) -> float:
        """Mean test accuracy over the final ``window`` epochs.

        A lower-variance estimate of converged accuracy than the single
        final epoch — the laptop-scale runs are small enough that one
        epoch of jitter is a full accuracy point.
        """
        if not self.records:
            raise ValueError("empty history")
        tail = self.records[-window:]
        return float(np.mean([r.test_accuracy for r in tail]))

    def accuracy_curve(self) -> np.ndarray:
        """Test accuracy per epoch — the Figure 5 series."""
        return np.asarray([r.test_accuracy for r in self.records])

    def loss_curve(self) -> np.ndarray:
        return np.asarray([r.train_loss for r in self.records])

    def accuracy_at(self, epoch: int) -> float:
        """Accuracy after ``epoch`` epochs (clamped to the run length)."""
        if not self.records:
            raise ValueError("empty history")
        return self.records[min(epoch, len(self.records) - 1)].test_accuracy

    @property
    def total_samples_trained(self) -> int:
        """Gradient computations proxy: sum of per-epoch subset sizes."""
        return sum(r.samples_trained for r in self.records)

    @property
    def mean_subset_fraction(self) -> float:
        if not self.records:
            raise ValueError("empty history")
        return float(np.mean([r.subset_fraction for r in self.records]))

    @property
    def total_wall_time_s(self) -> float:
        """Measured wall clock of the run (sum of per-epoch wall times)."""
        return float(sum(r.wall_time_s for r in self.records))

    @property
    def total_selection_time_s(self) -> float:
        """Wall clock spent inside selection rounds across the run."""
        return float(sum(r.selection_time_s for r in self.records))

    @property
    def selection_overhead_fraction(self) -> float:
        """Selection time as a fraction of total wall time (0 if untimed).

        The number the data-selection literature reports to justify
        selection cost against training savings; ``repro.cli report``
        derives the same ratio from a run trace.
        """
        wall = self.total_wall_time_s
        return self.total_selection_time_s / wall if wall > 0 else 0.0

    @property
    def total_feedback_bytes(self) -> int:
        """Quantized-weight feedback shipped over the host link."""
        return int(sum(r.feedback_bytes for r in self.records))

    @property
    def total_selection_pairwise_bytes(self) -> int:
        """Similarity state touched by the run's selection rounds."""
        return int(sum(r.selection_pairwise_bytes for r in self.records))

    @property
    def data_movement_bytes(self) -> int:
        """The run's data-movement ledger (feedback + pairwise bytes).

        ``repro.cli report`` reconciles its ``data moved total`` line
        against exactly this counter (``tests/obs`` asserts equality).
        """
        return self.total_feedback_bytes + self.total_selection_pairwise_bytes

    def epochs_to_accuracy(self, target: float) -> int | None:
        """First epoch reaching ``target`` accuracy, or None."""
        for r in self.records:
            if r.test_accuracy >= target:
                return r.epoch
        return None

    def to_dict(self) -> dict:
        """JSON-friendly dump (benchmark harness output)."""
        return {
            "method": self.method,
            "final_accuracy": self.final_accuracy,
            "best_accuracy": self.best_accuracy,
            "mean_subset_fraction": self.mean_subset_fraction,
            "total_samples_trained": self.total_samples_trained,
            "accuracy_curve": self.accuracy_curve().tolist(),
            "total_wall_time_s": self.total_wall_time_s,
            "total_selection_time_s": self.total_selection_time_s,
            "data_movement_bytes": self.data_movement_bytes,
        }


def evaluate_accuracy(model: Module, dataset: Dataset, batch_size: int = 512) -> float:
    """Top-1 accuracy of ``model`` on ``dataset`` (eval mode, batched)."""
    was_training = model.training
    model.eval()
    correct = 0
    try:
        for start in range(0, len(dataset), batch_size):
            x = dataset.x[start : start + batch_size]
            y = dataset.y[start : start + batch_size]
            pred = model(x).argmax(axis=1)
            correct += int((pred == y).sum())
    finally:
        if was_training:
            model.train()
    return correct / max(1, len(dataset))
