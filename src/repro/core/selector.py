"""The NeSSA selector: CRAIG facility location + the §3.2 optimizations.

One :meth:`NeSSASelector.select` call is what the paper's FPGA kernel does
at the start of an epoch (system step 2 in Figure 3):

1. score every candidate with the quantized feedback model (forward pass
   → last-layer gradient proxies, §3.1 / §3.2.1) — memoized by the
   :class:`~repro.parallel.cache.ProxyCache` when neither the feedback
   weights nor the candidate pool changed since the last round;
2. restrict candidates to samples not yet "learned" (subset biasing,
   §3.2.2 — the :class:`~repro.selection.biasing.LossHistory` is fed by
   the trainer);
3. flatten the per-class facility-location work into independent
   (class x chunk) units (:mod:`repro.parallel.scheduler`) and run them —
   serially, or fanned out over the
   :class:`~repro.parallel.engine.SelectionExecutor`'s process pool with
   proxies in shared memory.  Unit RNG streams are keyed, not shared, so
   the two paths are bit-identical for any worker count;
4. return medoid positions + CRAIG weights, plus the accounting the
   storage model consumes (proxy FLOPs, largest similarity buffer at the
   config's similarity dtype).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.config import NeSSAConfig
from repro.data.dataset import Dataset, Subset
from repro.parallel.cache import ProxyCache
from repro.parallel.engine import SelectionExecutor, SelectionSpec
from repro.parallel.scheduler import plan_selection_round
from repro.selection.biasing import LossHistory
from repro.selection.craig import SelectionResult
from repro.selection.gradients import compute_gradient_proxies
from repro.selection.qscore import quantize_proxies

__all__ = ["NeSSASelector"]


class NeSSASelector:
    """Near-storage subset selector (the FPGA-side algorithm).

    Parameters
    ----------
    config : the NeSSA knobs; :class:`~repro.core.config.NeSSAConfig`.
    chunk_select : per-chunk selection count *m* for partitioning; the
        trainer passes the mini-batch size per the paper's convention.
    workers : overrides ``config.workers`` (process count of the
        selection engine; 1 = serial).  Selections are bit-identical
        across worker counts — see DESIGN.md §4.
    """

    name = "nessa"

    def __init__(
        self,
        config: NeSSAConfig,
        chunk_select: int | None = None,
        workers: int | None = None,
    ):
        self.config = config
        self.chunk_select = chunk_select or config.partition_chunk_select
        self.workers = config.workers if workers is None else max(1, workers)
        self.rng = np.random.default_rng(config.seed)
        self.loss_history = LossHistory(
            window=config.biasing_window,
            drop_period=config.biasing_drop_period,
            drop_quantile=config.biasing_drop_quantile,
            min_history=min(3, config.biasing_window),
        )
        self.proxy_cache = (
            ProxyCache(config.proxy_cache_entries)
            if config.proxy_cache_entries > 0
            else None
        )
        self.executor = SelectionExecutor(self.workers)
        self.last_pairwise_bytes = 0
        self._round = 0

    def record_epoch_losses(self, ids: np.ndarray, losses: np.ndarray) -> None:
        """Trainer feedback: per-sample losses of the samples just trained."""
        if self.config.use_biasing:
            self.loss_history.record(ids, losses)

    def maybe_drop_learned(self, dataset: Dataset, epoch: int) -> int:
        """Apply the §3.2.2 drop policy if the epoch calls for it.

        Returns the number of samples dropped this call.
        """
        if not self.config.use_biasing or not self.loss_history.should_drop_now(epoch):
            return 0
        candidates = self.loss_history.filter_candidates(dataset.ids)
        marked = self.loss_history.mark_learned(candidates)
        # Never drop below what one subset needs: keep the pool at least
        # twice the current subset so selection still has choices.
        pool_after = len(candidates) - len(marked)
        min_pool = max(
            2 * int(self.config.subset_fraction * len(dataset)),
            dataset.num_classes,
        )
        if pool_after < min_pool:
            keep = max(0, len(candidates) - min_pool)
            marked = marked[:keep]
        self.loss_history.drop(marked)
        return len(marked)

    def snapshot_candidates(self, dataset: Dataset) -> np.ndarray:
        """Candidate positions under the *current* biasing state.

        The overlapped trainer calls this on the training thread before
        handing the round to a worker thread, so the worker never reads
        the (mutable) loss history: :meth:`select` with an explicit
        ``candidates`` array touches only state the training thread
        leaves alone during the overlap window.
        """
        if self.config.use_biasing:
            candidate_ids = self.loss_history.filter_candidates(dataset.ids)
            id_set = set(int(i) for i in candidate_ids)
            return np.flatnonzero([int(i) in id_set for i in dataset.ids])
        return np.arange(len(dataset), dtype=np.int64)

    def select(
        self,
        dataset: Dataset,
        fraction: float,
        model,
        candidates: np.ndarray | None = None,
    ) -> SelectionResult:
        """One selection round over ``dataset`` at the given fraction.

        ``model`` must be the quantized feedback replica when feedback is
        on (the trainer guarantees this); passing the live model emulates
        a hypothetical unquantized FPGA.  ``candidates`` substitutes a
        pool snapshot taken earlier with :meth:`snapshot_candidates`
        (overlapped rounds); ``None`` snapshots now — the two are
        identical when the biasing state has not changed in between.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")

        if candidates is None:
            candidates = self.snapshot_candidates(dataset)

        scoring = self.config.quantized_scoring
        proxy = compute_gradient_proxies(
            model,
            dataset.x[candidates],
            dataset.y[candidates],
            ids=dataset.ids[candidates],
            cache=self.proxy_cache,
            scoring="int8" if scoring == "int8" else "fp32",
        )

        k_total = max(1, int(round(fraction * len(dataset))))
        k_total = min(k_total, len(candidates))
        labels = dataset.y[candidates]

        # Quantized scoring: collapse the proxies to int8 buckets up
        # front.  The engine then ships 1-byte rows through shared
        # memory, and the bucket digests key both the chunk permutation
        # (stable partition across unchanged rounds) and the similarity
        # block cache.
        vectors = proxy.vectors
        perm_entropy = None
        scales = None
        if scoring == "int8":
            with obs.span("qscore_quantize", candidates=int(len(labels))) as qsp:
                # lint: allow-f64-escape(quantize_proxies IS the fp64-to-int8 boundary: scales are computed at full precision, then rows collapse to 1-byte buckets)
                qset = quantize_proxies(proxy.vectors, labels)  # lint: allow-dtype-drift(same boundary: the quantizer consumes fp64 proxies by design)
                qsp.set(dequant_error=qset.dequant_error, classes=len(qset.scales))
            obs.metrics().gauge("qscore.dequant_error").set(qset.dequant_error)
            vectors = qset.q
            perm_entropy = qset.perm_entropy
            scales = qset.scales

        chunk_select = None
        if self.config.use_partitioning:
            chunk_select = self.chunk_select or 128
        units = plan_selection_round(
            labels,
            k_total,
            seed=self.config.seed,
            round_index=self._round,
            chunk_select=chunk_select,
            perm_entropy=perm_entropy,
        )
        # lint: allow-shared-state(one round in flight: AsyncSelectionRound.launch refuses a second round and its join precedes the trainer's next select call)
        self._round += 1
        spec = SelectionSpec(
            method=self.config.selection_method,
            epsilon=self.config.stochastic_epsilon,
            similarity_dtype_bytes=self.config.similarity_dtype_bytes,
            scoring=scoring,
            scales=scales,
        )
        with obs.span(
            "chunk_select",
            units=len(units),
            workers=self.executor.workers,
            parallel=self.executor.is_parallel,
        ):
            outcomes = self.executor.run_units(vectors, units, spec, labels=labels)
        obs.metrics().counter("selection.units_executed").inc(len(units))
        obs.metrics().counter("selection.rounds").inc()

        positions, weights = [], []
        max_pairwise = 0
        for unit, outcome in zip(units, outcomes):
            sel, w, nbytes = outcome[:3]
            positions.append(candidates[unit.positions[sel]])
            weights.append(w)
            max_pairwise = max(max_pairwise, nbytes)

        # lint: allow-shared-state(one round in flight: written by the single active select call, read by the trainer only after join)
        self.last_pairwise_bytes = max_pairwise
        return SelectionResult(
            positions=np.concatenate(positions) if positions else np.zeros(0, np.int64),
            weights=np.concatenate(weights) if weights else np.zeros(0, np.float64),
            pairwise_bytes=max_pairwise,
            proxy_flops=proxy.flops,
        )

    @property
    def qscore_stats(self) -> dict | None:
        """Last round's quantized-scoring accounting (None when off).

        ``block_hits`` / ``block_misses`` count (class, chunk) similarity
        blocks served from the cross-round rescore cache vs recomputed;
        ``macs`` the int8 multiply-accumulates actually executed.
        """
        return self.executor.last_qscore_stats

    @property
    def proxy_cache_stats(self) -> dict:
        """Hit/miss accounting of the proxy cache (zeros when disabled)."""
        if self.proxy_cache is None:
            return {"hits": 0, "misses": 0, "lookups": 0, "hit_rate": 0.0,
                    "entries": 0}
        return self.proxy_cache.stats

    def subset(self, dataset: Dataset, fraction: float, model) -> Subset:
        """Run :meth:`select` and wrap the result as a weighted Subset."""
        result = self.select(dataset, fraction, model)
        return Subset(dataset, result.positions, weights=result.weights)

    def close(self) -> None:
        """Release the engine's process pool (no-op for serial selectors)."""
        self.executor.close()

    def __enter__(self) -> "NeSSASelector":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
