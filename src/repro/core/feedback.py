"""Quantized-weight feedback loop between GPU and FPGA (paper §3.2.1).

After each training round the target model's weights are quantized and
transferred back to the SmartSSD, so the FPGA-side selection model scores
samples with (a fixed-point approximation of) the *current* model instead
of a stale one.  :class:`FeedbackLoop` owns the FPGA-side model replica
and the transfer bookkeeping the data-movement accounting reads.
"""

from __future__ import annotations

from typing import Callable

from repro.nn.modules import Module
from repro.nn.quantize import QuantizedModel

__all__ = ["FeedbackLoop"]


class FeedbackLoop:
    """Owns the FPGA-side quantized replica of the target model.

    Parameters
    ----------
    model_factory : builds a fresh instance of the target architecture
        (the replica the quantized weights are loaded into).
    bits : quantization width (paper kernel: int8).
    enabled : when False, :meth:`sync` is a no-op and the replica keeps
        its initial weights forever — the no-feedback ablation arm.
    """

    def __init__(self, model_factory: Callable[[], Module], bits: int = 8, enabled: bool = True):
        self.bits = bits
        self.enabled = enabled
        self.replica = QuantizedModel(model_factory(), bits=bits)
        self.syncs = 0
        self.bytes_transferred = 0

    def sync(self, source: Module) -> int:
        """Quantize ``source``'s weights into the replica.

        Returns the payload size in bytes (0 when disabled), which the
        system model charges to the host→device link.
        """
        if not self.enabled:
            return 0
        payload = self.replica.sync_from(source)
        self.syncs += 1
        self.bytes_transferred += payload
        return payload

    @property
    def selection_model(self) -> QuantizedModel:
        """The model the selector must run its forward passes through."""
        return self.replica
