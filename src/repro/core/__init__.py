"""The NeSSA contribution: selector, feedback loop, trainers, schedules.

This package implements Section 3 of the paper: the selection model
(CRAIG facility location) adapted to near-storage execution with the three
accuracy optimizations — quantized-weight feedback (§3.2.1), subset
biasing (§3.2.2), dataset partitioning (§3.2.3) — plus the dynamic
subset-size schedule (contribution 4 of the introduction).
"""

from repro.core.config import NeSSAConfig, TrainRecipe
from repro.core.feedback import FeedbackLoop
from repro.core.metrics import EpochRecord, TrainingHistory, evaluate_accuracy
from repro.core.schedule import SubsetSizeSchedule
from repro.core.selector import NeSSASelector
from repro.core.trainer import FullTrainer, NeSSATrainer, SubsetTrainer

__all__ = [
    "NeSSAConfig",
    "TrainRecipe",
    "NeSSASelector",
    "FeedbackLoop",
    "SubsetSizeSchedule",
    "NeSSATrainer",
    "FullTrainer",
    "SubsetTrainer",
    "EpochRecord",
    "TrainingHistory",
    "evaluate_accuracy",
]
