"""Configuration objects for NeSSA experiments.

:class:`TrainRecipe` is the optimization recipe of paper Section 4.1 —
200 epochs, batch 128, LR 0.1 divided by 5 at 60/120/160, weight decay
5e-4, Nesterov momentum 0.9 — with a :meth:`TrainRecipe.scaled` helper
that shrinks the epoch budget proportionally (milestones included) for
laptop-scale runs.

:class:`NeSSAConfig` collects every NeSSA-specific knob with the paper's
values as defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["TrainRecipe", "NeSSAConfig"]

# Similarity-tile entry widths the accounting understands (paper fp32
# tiles, host float64 block-tiled selection, int8 quantized kernel).
_SIMILARITY_DTYPE_BYTES = {"float64": 8, "float32": 4, "int8": 1}


@dataclass(frozen=True)
class TrainRecipe:
    """The paper's training recipe (Section 4.1)."""

    epochs: int = 200
    batch_size: int = 128
    lr: float = 0.1
    lr_milestones: tuple = (60, 120, 160)
    lr_gamma_div: float = 5.0
    momentum: float = 0.9
    weight_decay: float = 5e-4
    nesterov: bool = True
    clip_grad_norm: float | None = None

    def __post_init__(self):
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.clip_grad_norm is not None and self.clip_grad_norm <= 0:
            raise ValueError("clip_grad_norm must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if any(m >= self.epochs for m in self.lr_milestones):
            raise ValueError("lr milestones must fall inside the epoch budget")

    def scaled(self, epochs: int) -> "TrainRecipe":
        """Same recipe compressed to ``epochs``, milestones scaled in place."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        ratio = epochs / self.epochs
        milestones = tuple(
            sorted({max(1, int(round(m * ratio))) for m in self.lr_milestones})
        )
        milestones = tuple(m for m in milestones if m < epochs)
        return replace(self, epochs=epochs, lr_milestones=milestones)


@dataclass(frozen=True)
class NeSSAConfig:
    """All NeSSA-specific knobs, defaulting to the paper's choices.

    Attributes
    ----------
    subset_fraction : initial fraction of the candidate pool to select.
    select_every : epochs between re-selections (the paper re-selects at
        the start of every epoch; values > 1 amortize selection cost).
    selection_method : ``"lazy"`` or ``"stochastic"`` facility-location
        maximization.
    feedback_bits : quantization width of the weight feedback (§3.2.1);
        32 disables quantization error (fp32 feedback ablation).
    use_feedback : ship updated weights back each round; off means the
        selection model keeps the initial weights forever (ablation arm).
    use_biasing : subset biasing (§3.2.2).
    biasing_window / biasing_drop_period / biasing_drop_quantile : the
        5-epoch loss window and 20-epoch conservative drop period.
    use_partitioning : dataset partitioning (§3.2.3).
    partition_chunk_select : samples selected per chunk (*m*; the paper
        uses the mini-batch size, and the trainer defaults it to that).
    workers : process count for the parallel selection engine
        (:mod:`repro.parallel`); 1 keeps selection serial in-process.
        Parallel results are bit-identical to serial for any count.
    similarity_precision : entry dtype of the similarity tiles the
        accounting charges against on-chip memory — ``"float32"`` (the
        FPGA kernel's fp32 tile), ``"float64"`` (host-side block-tiled
        path), or ``"int8"`` (quantized-similarity kernel).
    proxy_cache_entries : LRU capacity of the proxy-reuse cache (skips
        the selection forward pass when the quantized feedback weights
        and candidate pool are unchanged); 0 disables caching.
    quantized_scoring : ``"int8"`` runs the similarity stage through the
        quantized scoring engine (:mod:`repro.selection.qscore`) — int8
        proxies with per-class symmetric scales, integer-GEMM distances
        and the cross-round block cache, mirroring the Table 4 kernel —
        or ``"off"`` for the fp32/fp64 host path.  Forces 1-byte
        similarity-tile accounting regardless of
        ``similarity_precision``.
    dynamic_subset : shrink the subset when the loss-reduction rate stalls
        (introduction contribution 4).
    dynamic_threshold / dynamic_shrink / min_subset_fraction : stall
        threshold on the relative per-epoch loss reduction, multiplicative
        shrink factor, and the floor.
    overlap : run each selection round on a background thread while the
        previous subset trains (the paper's storage/compute concurrency,
        Fig. 3).  Only effective together with ``stale_feedback="stale"``
        — with ``"off"`` the trainer falls back to serial selection
        semantics, which is the bit-identical equivalence mode.
    stale_feedback : ``"stale"`` (overlapped rounds score candidates with
        the round *t-1* quantized weights — the paper's feedback
        latency) or ``"off"`` (strict serial semantics).
    prefetch_depth : ready-batch queue depth of the prefetching loader;
        0 keeps the serial in-thread loader.  Batch streams are
        bit-identical for any depth.
    """

    subset_fraction: float = 0.3
    select_every: int = 1
    selection_method: str = "lazy"
    stochastic_epsilon: float = 0.1

    use_feedback: bool = True
    feedback_bits: int = 8

    use_biasing: bool = True
    biasing_window: int = 5
    biasing_drop_period: int = 20
    biasing_drop_quantile: float = 0.3

    use_partitioning: bool = True
    partition_chunk_select: int | None = None

    workers: int = 1
    similarity_precision: str = "float32"
    proxy_cache_entries: int = 4
    quantized_scoring: str = "off"

    dynamic_subset: bool = False
    dynamic_threshold: float = 0.02
    dynamic_shrink: float = 0.9
    min_subset_fraction: float = 0.1

    overlap: bool = False
    stale_feedback: str = "stale"
    prefetch_depth: int = 0

    seed: int = 0

    def __post_init__(self):
        if not 0.0 < self.subset_fraction <= 1.0:
            raise ValueError("subset_fraction must be in (0, 1]")
        if self.select_every < 1:
            raise ValueError("select_every must be >= 1")
        if self.selection_method not in ("lazy", "stochastic"):
            raise ValueError("selection_method must be 'lazy' or 'stochastic'")
        if not 2 <= self.feedback_bits <= 32:
            raise ValueError("feedback_bits must be in [2, 32]")
        if not 0.0 < self.min_subset_fraction <= self.subset_fraction:
            raise ValueError("min_subset_fraction must be in (0, subset_fraction]")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.similarity_precision not in _SIMILARITY_DTYPE_BYTES:
            raise ValueError(
                "similarity_precision must be one of "
                f"{sorted(_SIMILARITY_DTYPE_BYTES)}"
            )
        if self.proxy_cache_entries < 0:
            raise ValueError("proxy_cache_entries must be >= 0")
        if self.quantized_scoring not in ("off", "int8"):
            raise ValueError("quantized_scoring must be 'off' or 'int8'")
        if self.stale_feedback not in ("stale", "off"):
            raise ValueError("stale_feedback must be 'stale' or 'off'")
        if self.prefetch_depth < 0:
            raise ValueError("prefetch_depth must be >= 0")

    @property
    def similarity_dtype_bytes(self) -> int:
        """Bytes per similarity-matrix entry under ``similarity_precision``.

        The int8 quantized scoring engine stores 1-byte entries by
        construction, so it overrides the precision knob.
        """
        if self.quantized_scoring == "int8":
            return _SIMILARITY_DTYPE_BYTES["int8"]
        return _SIMILARITY_DTYPE_BYTES[self.similarity_precision]

    def vanilla(self) -> "NeSSAConfig":
        """NeSSA without SB and PA — Table 3's 'Vanilla' column."""
        return replace(self, use_biasing=False, use_partitioning=False)

    def with_only_biasing(self) -> "NeSSAConfig":
        """Table 3's 'SB' column."""
        return replace(self, use_biasing=True, use_partitioning=False)

    def with_only_partitioning(self) -> "NeSSAConfig":
        """Table 3's 'PA' column."""
        return replace(self, use_biasing=False, use_partitioning=True)
