"""Dynamic subset-size schedule (introduction contribution 4).

*"Dynamically reduce the subset size based on loss reduction rate during
the training process to ensure that we train on the least required data
samples."*

The schedule watches the per-epoch mean training loss.  When the relative
reduction rate ``(prev - cur) / prev`` stays below ``threshold`` for
``patience`` consecutive epochs, the subset fraction is multiplied by
``shrink`` (floored at ``min_fraction``): a model whose loss has plateaued
does not need more data per epoch, it needs more epochs on the hard core.
"""

from __future__ import annotations

__all__ = ["SubsetSizeSchedule"]


class SubsetSizeSchedule:
    """Loss-reduction-rate-driven subset shrinking."""

    def __init__(
        self,
        initial_fraction: float,
        min_fraction: float = 0.1,
        threshold: float = 0.02,
        shrink: float = 0.9,
        patience: int = 2,
        enabled: bool = True,
    ):
        if not 0.0 < min_fraction <= initial_fraction <= 1.0:
            raise ValueError("need 0 < min_fraction <= initial_fraction <= 1")
        if not 0.0 < shrink < 1.0:
            raise ValueError("shrink must be in (0, 1)")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.fraction = initial_fraction
        self.min_fraction = min_fraction
        self.threshold = threshold
        self.shrink = shrink
        self.patience = patience
        self.enabled = enabled
        self._prev_loss: float | None = None
        self._stalled_epochs = 0
        self.shrink_events: list[int] = []
        self._epoch = -1

    def update(self, train_loss: float) -> float:
        """Feed one epoch's mean training loss; returns the new fraction."""
        self._epoch += 1
        if not self.enabled:
            return self.fraction
        if self._prev_loss is not None and self._prev_loss > 0:
            rate = (self._prev_loss - train_loss) / self._prev_loss
            if rate < self.threshold:
                self._stalled_epochs += 1
            else:
                self._stalled_epochs = 0
            if self._stalled_epochs >= self.patience:
                new_fraction = max(self.min_fraction, self.fraction * self.shrink)
                if new_fraction < self.fraction:
                    self.fraction = new_fraction
                    self.shrink_events.append(self._epoch)
                self._stalled_epochs = 0
        self._prev_loss = train_loss
        return self.fraction
