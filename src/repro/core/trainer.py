"""Trainers: full-data, generic subset-selection, and the NeSSA loop.

:class:`NeSSATrainer` implements the five steps of paper Figure 3:

1. (storage) candidates live on the simulated SmartSSD — the trainer is
   pure ML; byte/time accounting happens in :mod:`repro.pipeline.system`
   from the counters recorded here;
2. run the selection model (quantized replica) and pick the subset;
3. train the target model on the weighted subset;
4. feed back quantized weights + per-sample losses, update the candidate
   pool (subset biasing) and the subset size (dynamic schedule);
5. repeat for all epochs.

:class:`SubsetTrainer` runs the same outer loop for the CPU baselines
(CRAIG, k-centers, random) — selection with the *live* model, no feedback
quantization, no biasing — so Table 3/Figure 4 comparisons are
apples-to-apples.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro import obs
from repro.core.config import NeSSAConfig, TrainRecipe
from repro.core.feedback import FeedbackLoop
from repro.core.metrics import EpochRecord, TrainingHistory, evaluate_accuracy
from repro.core.schedule import SubsetSizeSchedule
from repro.core.selector import NeSSASelector
from repro.data.dataset import Dataset, Subset
from repro.data.loader import DataLoader
from repro.data.prefetch import PrefetchingDataLoader
from repro.nn.loss import CrossEntropyLoss
from repro.nn.modules import Module
from repro.nn.optim import SGD, MultiStepLR
from repro.nn.scratch import BufferPool

__all__ = ["FullTrainer", "SubsetTrainer", "NeSSATrainer"]


class _BaseTrainer:
    """Shared epoch machinery for all trainers."""

    def __init__(self, model: Module, recipe: TrainRecipe, seed: int = 0):
        self.model = model
        self.recipe = recipe
        self.seed = seed
        self.criterion = CrossEntropyLoss()
        self.optimizer = SGD(
            model.parameters(),
            lr=recipe.lr,
            momentum=recipe.momentum,
            weight_decay=recipe.weight_decay,
            nesterov=recipe.nesterov,
            clip_grad_norm=recipe.clip_grad_norm,
        )
        self.scheduler = MultiStepLR(
            self.optimizer, recipe.lr_milestones, recipe.lr_gamma_div
        )

    def _train_one_epoch(self, loader: DataLoader) -> tuple[float, np.ndarray, np.ndarray]:
        """One pass over the loader.

        Returns ``(mean loss, per-sample losses, aligned sample ids)`` —
        the last two feed NeSSA's subset biasing.
        """
        self.model.train()
        losses, ids = [], []
        total_loss, total_n = 0.0, 0
        for batch in loader:
            logits = self.model(batch.x)
            loss = self.criterion(logits, batch.y, weights=batch.weights)
            self.optimizer.zero_grad()
            grad = self.criterion.backward()
            self.model.backward(grad)
            self.optimizer.step()

            per_sample = CrossEntropyLoss.per_sample_losses(logits, batch.y)
            losses.append(per_sample)
            ids.append(batch.ids)
            total_loss += float(per_sample.mean()) * len(batch)
            total_n += len(batch)
        self.scheduler.step()
        mean_loss = total_loss / max(1, total_n)
        return mean_loss, np.concatenate(losses), np.concatenate(ids)


class FullTrainer(_BaseTrainer):
    """Train on the entire dataset every epoch — the paper's 'Goal' column."""

    name = "full"

    def train(self, train_set: Dataset, test_set: Dataset) -> TrainingHistory:
        history = TrainingHistory(method=self.name)
        loader = DataLoader(
            train_set, self.recipe.batch_size, shuffle=True, seed=self.seed
        )
        for epoch in range(self.recipe.epochs):
            epoch_t0 = time.perf_counter()
            with obs.span("epoch", epoch=epoch, method=self.name) as ep:
                mean_loss, _, _ = self._train_one_epoch(loader)
                acc = evaluate_accuracy(self.model, test_set)
                ep.set(train_loss=mean_loss, test_accuracy=acc,
                       samples_trained=len(train_set))
            history.append(
                EpochRecord(
                    epoch=epoch,
                    train_loss=mean_loss,
                    test_accuracy=acc,
                    subset_size=len(train_set),
                    subset_fraction=1.0,
                    samples_trained=len(train_set),
                    lr=self.scheduler.current_lr,
                    wall_time_s=time.perf_counter() - epoch_t0,
                )
            )
        return history


class SubsetTrainer(_BaseTrainer):
    """Outer loop for CPU-side baselines (CRAIG / k-centers / random).

    ``selector`` is any object with
    ``select(dataset, fraction, model) -> SelectionResult``; selection runs
    with the live target model (these baselines have no quantized replica).
    """

    def __init__(
        self,
        model: Module,
        recipe: TrainRecipe,
        selector,
        subset_fraction: float,
        select_every: int = 1,
        seed: int = 0,
    ):
        super().__init__(model, recipe, seed)
        if not 0.0 < subset_fraction <= 1.0:
            raise ValueError("subset_fraction must be in (0, 1]")
        self.selector = selector
        self.subset_fraction = subset_fraction
        self.select_every = max(1, select_every)
        self.name = getattr(selector, "name", "subset")

    def train(self, train_set: Dataset, test_set: Dataset) -> TrainingHistory:
        history = TrainingHistory(method=self.name)
        subset: Subset | None = None
        for epoch in range(self.recipe.epochs):
            epoch_t0 = time.perf_counter()
            selection_s = 0.0
            with obs.span("epoch", epoch=epoch, method=self.name) as ep:
                selection_ran = False
                proxy_flops = 0.0
                pairwise = 0
                if subset is None or epoch % self.select_every == 0:
                    select_t0 = time.perf_counter()
                    with obs.span("selection_round", epoch=epoch) as sel:
                        result = self.selector.select(
                            train_set, self.subset_fraction, self.model
                        )
                        sel.set(
                            pairwise_bytes=int(result.pairwise_bytes),
                            proxy_flops=float(result.proxy_flops),
                            selected=len(result.positions),
                        )
                    selection_s = time.perf_counter() - select_t0
                    weights = result.weights if result.weights.std() > 0 else None
                    subset = Subset(train_set, result.positions, weights=weights)
                    selection_ran = True
                    proxy_flops = result.proxy_flops
                    pairwise = result.pairwise_bytes

                loader = DataLoader(
                    subset, self.recipe.batch_size, shuffle=True, seed=self.seed + epoch
                )
                mean_loss, _, _ = self._train_one_epoch(loader)
                acc = evaluate_accuracy(self.model, test_set)
                ep.set(train_loss=mean_loss, test_accuracy=acc,
                       subset_size=len(subset),
                       subset_fraction=len(subset) / len(train_set))
            history.append(
                EpochRecord(
                    epoch=epoch,
                    train_loss=mean_loss,
                    test_accuracy=acc,
                    subset_size=len(subset),
                    subset_fraction=len(subset) / len(train_set),
                    samples_trained=len(subset),
                    selection_ran=selection_ran,
                    selection_proxy_flops=proxy_flops,
                    selection_pairwise_bytes=pairwise,
                    lr=self.scheduler.current_lr,
                    wall_time_s=time.perf_counter() - epoch_t0,
                    selection_time_s=selection_s,
                )
            )
        return history


class NeSSATrainer(_BaseTrainer):
    """The full NeSSA loop: near-storage selection + feedback + biasing.

    ``model_factory`` builds the FPGA-side replica architecture (same as
    the target model's).
    """

    name = "nessa"

    def __init__(
        self,
        model: Module,
        recipe: TrainRecipe,
        config: NeSSAConfig,
        model_factory: Callable[[], Module],
    ):
        super().__init__(model, recipe, seed=config.seed)
        self.config = config
        chunk_select = config.partition_chunk_select or recipe.batch_size
        self.selector = NeSSASelector(config, chunk_select=chunk_select)
        self.feedback = FeedbackLoop(
            model_factory, bits=config.feedback_bits, enabled=config.use_feedback
        )
        self.schedule = SubsetSizeSchedule(
            initial_fraction=config.subset_fraction,
            min_fraction=config.min_subset_fraction,
            threshold=config.dynamic_threshold,
            shrink=config.dynamic_shrink,
            enabled=config.dynamic_subset,
        )
        # One pool for the whole run so epoch 2+ serves every batch
        # buffer from the free list (depth queued + consumed + filling).
        self._loader_pool = (
            BufferPool(max_free_per_key=config.prefetch_depth + 2)
            if config.prefetch_depth > 0
            else None
        )

    def _make_loader(self, subset: Subset, epoch: int) -> DataLoader:
        """The epoch's loader: prefetching when configured, else serial.

        Both paths derive batch order from ``seed + epoch`` via the same
        helper, so the streams are bit-identical at any depth.
        """
        if self.config.prefetch_depth > 0:
            return PrefetchingDataLoader(
                subset, self.recipe.batch_size, shuffle=True,
                seed=self.config.seed + epoch,
                depth=self.config.prefetch_depth, pool=self._loader_pool,
            )
        return DataLoader(
            subset, self.recipe.batch_size, shuffle=True,
            seed=self.config.seed + epoch,
        )

    def train(self, train_set: Dataset, test_set: Dataset) -> TrainingHistory:
        if self.config.overlap:
            return self._train_overlapped(train_set, test_set)
        history = TrainingHistory(method=self.name)
        # Initial feedback sync: the FPGA starts from the initial weights.
        # Recorded as run setup, not as a `feedback_quantize` link span —
        # no EpochRecord carries it, and `repro.cli report` reconciles
        # link bytes against the per-epoch ledger exactly.
        with obs.span("run_setup", method=self.name) as setup:
            feedback_bytes = self.feedback.sync(self.model)
            setup.set(feedback_sync_bytes=int(feedback_bytes))

        subset: Subset | None = None
        fraction = self.schedule.fraction
        for epoch in range(self.recipe.epochs):
            epoch_t0 = time.perf_counter()
            selection_s = 0.0
            with obs.span("epoch", epoch=epoch, method=self.name) as ep:
                dropped = self.selector.maybe_drop_learned(train_set, epoch)

                selection_ran = False
                proxy_flops = 0.0
                pairwise = 0
                if subset is None or epoch % self.config.select_every == 0:
                    select_t0 = time.perf_counter()
                    with obs.span("selection_round", epoch=epoch) as sel:
                        result = self.selector.select(
                            train_set, fraction, self.feedback.selection_model
                        )
                        sel.set(
                            pairwise_bytes=int(result.pairwise_bytes),
                            proxy_flops=float(result.proxy_flops),
                            selected=len(result.positions),
                            fraction=float(fraction),
                        )
                    selection_s = time.perf_counter() - select_t0
                    weights = result.weights if result.weights.std() > 0 else None
                    subset = Subset(train_set, result.positions, weights=weights)
                    selection_ran = True
                    proxy_flops = result.proxy_flops
                    pairwise = result.pairwise_bytes

                loader = self._make_loader(subset, epoch)
                mean_loss, per_sample, ids = self._train_one_epoch(loader)
                self.selector.record_epoch_losses(ids, per_sample)

                # Step 4 of Figure 3: quantize + ship the updated weights back.
                with obs.span("feedback_quantize", epoch=epoch) as fb:
                    feedback_bytes = self.feedback.sync(self.model)
                    fb.set(link_bytes=int(feedback_bytes), bits=self.feedback.bits)
                fraction = self.schedule.update(mean_loss)

                acc = evaluate_accuracy(self.model, test_set)
                ep.set(train_loss=mean_loss, test_accuracy=acc,
                       subset_size=len(subset),
                       subset_fraction=len(subset) / len(train_set),
                       dropped_samples=dropped)
            history.append(
                EpochRecord(
                    epoch=epoch,
                    train_loss=mean_loss,
                    test_accuracy=acc,
                    subset_size=len(subset),
                    subset_fraction=len(subset) / len(train_set),
                    samples_trained=len(subset),
                    selection_ran=selection_ran,
                    selection_proxy_flops=proxy_flops,
                    selection_pairwise_bytes=pairwise,
                    feedback_bytes=feedback_bytes,
                    dropped_samples=dropped,
                    lr=self.scheduler.current_lr,
                    wall_time_s=time.perf_counter() - epoch_t0,
                    selection_time_s=selection_s,
                )
            )
        return history

    def _train_overlapped(self, train_set: Dataset, test_set: Dataset) -> TrainingHistory:
        """The NeSSA loop with selection hidden behind training.

        Schedule per epoch *e* (``stale_feedback="stale"``):

        1. apply the biasing drop, consume the round launched during
           epoch *e-1* (epoch 0 selects synchronously);
        2. launch epoch *e+1*'s round on a worker thread — candidates
           snapshotted here, scored with the feedback weights synced
           after epoch *e-1* (stale by one round, as on the device);
        3. train epoch *e* — the overlap window;
        4. join the round *before* recording losses / syncing feedback,
           so the worker never races the state it reads.

        With ``stale_feedback="off"`` the round runs synchronously at
        step 1 (strict mode) and the loop reproduces :meth:`train`'s
        serial history and trace bit-for-bit.
        """
        # Imported here: repro.pipeline's package init imports this module.
        from repro.pipeline.overlap import AsyncSelectionRound

        history = TrainingHistory(method=self.name)
        with obs.span("run_setup", method=self.name) as setup:
            feedback_bytes = self.feedback.sync(self.model)
            setup.set(feedback_sync_bytes=int(feedback_bytes))

        stale = self.config.stale_feedback == "stale"
        subset: Subset | None = None
        fraction = self.schedule.fraction
        with AsyncSelectionRound(self.selector, strict=not stale) as round_:
            for epoch in range(self.recipe.epochs):
                epoch_t0 = time.perf_counter()
                selection_s = 0.0
                with obs.span("epoch", epoch=epoch, method=self.name) as ep:
                    dropped = self.selector.maybe_drop_learned(train_set, epoch)

                    selection_ran = False
                    proxy_flops = 0.0
                    pairwise = 0
                    if subset is None or epoch % self.config.select_every == 0:
                        select_t0 = time.perf_counter()
                        result = round_.consume(
                            train_set, fraction, self.feedback.selection_model, epoch
                        )
                        selection_s = time.perf_counter() - select_t0
                        weights = result.weights if result.weights.std() > 0 else None
                        subset = Subset(train_set, result.positions, weights=weights)
                        selection_ran = True
                        proxy_flops = result.proxy_flops
                        pairwise = result.pairwise_bytes

                    next_sel = epoch + 1
                    if (
                        stale
                        and next_sel < self.recipe.epochs
                        and next_sel % self.config.select_every == 0
                    ):
                        round_.launch(
                            train_set, fraction, self.feedback.selection_model, next_sel
                        )

                    loader = self._make_loader(subset, epoch)
                    mean_loss, per_sample, ids = self._train_one_epoch(loader)

                    # The join point: the worker reads the feedback
                    # replica and proxy cache, so it must land before the
                    # sync below mutates them.  Whatever the training
                    # epoch failed to hide shows up as selection time.
                    selection_s += round_.join()

                    self.selector.record_epoch_losses(ids, per_sample)
                    with obs.span("feedback_quantize", epoch=epoch) as fb:
                        feedback_bytes = self.feedback.sync(self.model)
                        fb.set(link_bytes=int(feedback_bytes), bits=self.feedback.bits)
                    fraction = self.schedule.update(mean_loss)

                    acc = evaluate_accuracy(self.model, test_set)
                    ep.set(train_loss=mean_loss, test_accuracy=acc,
                           subset_size=len(subset),
                           subset_fraction=len(subset) / len(train_set),
                           dropped_samples=dropped)
                history.append(
                    EpochRecord(
                        epoch=epoch,
                        train_loss=mean_loss,
                        test_accuracy=acc,
                        subset_size=len(subset),
                        subset_fraction=len(subset) / len(train_set),
                        samples_trained=len(subset),
                        selection_ran=selection_ran,
                        selection_proxy_flops=proxy_flops,
                        selection_pairwise_bytes=pairwise,
                        feedback_bytes=feedback_bytes,
                        dropped_samples=dropped,
                        lr=self.scheduler.current_lr,
                        wall_time_s=time.perf_counter() - epoch_t0,
                        selection_time_s=selection_s,
                    )
                )
        return history
